// Tests for the shared-memory region, the counter sources (including the
// paper's software counter thread) and the symbol registry.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <thread>

#include "common/spin.h"
#include "core/counter.h"
#include "core/log_format.h"
#include "common/shm.h"
#include "core/symbol_registry.h"

namespace teeperf {
namespace {

// --- shared memory -----------------------------------------------------------

TEST(Shm, AnonymousCreate) {
  SharedMemoryRegion r;
  ASSERT_TRUE(r.create_anonymous(4096));
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(r.size(), 4096u);
  std::memset(r.data(), 0x5a, 4096);
  EXPECT_EQ(static_cast<u8*>(r.data())[4095], 0x5a);
}

TEST(Shm, NamedCreateOpenSharesData) {
  std::string name = "/teeperf_test_" + std::to_string(getpid());
  SharedMemoryRegion writer;
  ASSERT_TRUE(writer.create(name, 8192));

  SharedMemoryRegion reader;
  ASSERT_TRUE(reader.open(name));
  EXPECT_EQ(reader.size(), 8192u);

  // Writes through one mapping are visible through the other — the TEE ↔
  // recorder communication channel.
  static_cast<u64*>(writer.data())[0] = 0xfeedface;
  EXPECT_EQ(static_cast<u64*>(reader.data())[0], 0xfeedfaceu);
}

TEST(Shm, CreateExclusiveRefusesDuplicate) {
  std::string name = "/teeperf_dup_" + std::to_string(getpid());
  SharedMemoryRegion a, b;
  ASSERT_TRUE(a.create(name, 4096));
  EXPECT_FALSE(b.create(name, 4096));
}

TEST(Shm, OpenMissingFails) {
  SharedMemoryRegion r;
  EXPECT_FALSE(r.open("/teeperf_does_not_exist_xyz"));
}

TEST(Shm, CreatorUnlinksOnClose) {
  std::string name = "/teeperf_unlink_" + std::to_string(getpid());
  {
    SharedMemoryRegion r;
    ASSERT_TRUE(r.create(name, 4096));
  }
  SharedMemoryRegion again;
  EXPECT_FALSE(again.open(name));
}

TEST(Shm, MoveTransfersOwnership) {
  SharedMemoryRegion a;
  ASSERT_TRUE(a.create_anonymous(4096));
  void* p = a.data();
  SharedMemoryRegion b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_FALSE(a.valid());
}

// --- counters ------------------------------------------------------------------

TEST(Counter, TscMonotonicNonDecreasing) {
  LogHeader h;
  u64 prev = read_counter(CounterMode::kTsc, &h);
  for (int i = 0; i < 100; ++i) {
    u64 now = read_counter(CounterMode::kTsc, &h);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Counter, SteadyClockAdvances) {
  LogHeader h;
  u64 a = read_counter(CounterMode::kSteadyClock, &h);
  spin_for_ns(100'000);
  u64 b = read_counter(CounterMode::kSteadyClock, &h);
  EXPECT_GT(b, a);
}

TEST(Counter, NsPerTickSane) {
  LogHeader h;
  std::optional<double> tsc = counter_ns_per_tick(CounterMode::kTsc, &h);
  ASSERT_TRUE(tsc.has_value());
  EXPECT_GT(*tsc, 0.0);
  EXPECT_LT(*tsc, 1000.0);  // >1 MHz
  std::optional<double> steady =
      counter_ns_per_tick(CounterMode::kSteadyClock, &h);
  ASSERT_TRUE(steady.has_value());
  EXPECT_DOUBLE_EQ(*steady, 1.0);
}

TEST(Counter, NsPerTickFailsOnDegenerateWindow) {
  // A software counter with no thread behind it never advances: the 2 ms
  // measurement window sees zero ticks. The old code mapped that to 1.0 —
  // indistinguishable from a real 1 ns/tick calibration — which poisoned
  // every downstream time conversion; it must be an explicit failure.
  LogHeader h;
  EXPECT_FALSE(counter_ns_per_tick(CounterMode::kSoftware, &h).has_value());
}

TEST(Counter, SoftwareCounterIncrementsHeaderWord) {
  LogHeader h;
  // Yield aggressively so this passes on a single-core machine.
  SoftwareCounter counter(&h, /*yield_every=*/1024);
  counter.start();
  EXPECT_TRUE(counter.running());
  u64 deadline = monotonic_ns() + 500'000'000;  // up to 500 ms
  u64 seen = 0;
  while (monotonic_ns() < deadline) {
    seen = h.counter.load(std::memory_order_relaxed);
    if (seen > 100'000) break;
    std::this_thread::yield();
  }
  counter.stop();
  EXPECT_FALSE(counter.running());
  EXPECT_GT(seen, 100'000u) << "software counter made no progress";
  EXPECT_GT(counter.ticks_per_second(), 0.0);

  // Stopped counter stays still.
  u64 frozen = h.counter.load(std::memory_order_relaxed);
  spin_for_ns(5'000'000);
  EXPECT_EQ(h.counter.load(std::memory_order_relaxed), frozen);
}

TEST(Counter, SoftwareModeReadsHeader) {
  LogHeader h;
  h.counter.store(777, std::memory_order_relaxed);
  EXPECT_EQ(read_counter(CounterMode::kSoftware, &h), 777u);
}

TEST(Counter, ModeNames) {
  EXPECT_STREQ(counter_mode_name(CounterMode::kSoftware), "software");
  EXPECT_STREQ(counter_mode_name(CounterMode::kTsc), "tsc");
  EXPECT_STREQ(counter_mode_name(CounterMode::kSteadyClock), "steady_clock");
}

// --- symbol registry ------------------------------------------------------------

TEST(SymbolRegistry, InternIsStable) {
  auto& reg = SymbolRegistry::instance();
  u64 a = reg.intern("test::function_a");
  u64 b = reg.intern("test::function_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.intern("test::function_a"), a);
  EXPECT_TRUE(SymbolRegistry::is_registered_id(a));
  EXPECT_EQ(reg.name_of(a), "test::function_a");
}

TEST(SymbolRegistry, RawAddressesAreNotRegisteredIds) {
  // x86-64 canonical userspace addresses have bit 62 clear.
  EXPECT_FALSE(SymbolRegistry::is_registered_id(0x00007fffdeadbeefull));
  EXPECT_FALSE(SymbolRegistry::is_registered_id(0x1234));
}

TEST(SymbolRegistry, SerializeParseRoundTrip) {
  auto& reg = SymbolRegistry::instance();
  u64 id = reg.intern("roundtrip::sym");
  auto parsed = SymbolRegistry::parse(reg.serialize());
  ASSERT_TRUE(parsed.contains(id));
  EXPECT_EQ(parsed.at(id), "roundtrip::sym");
}

TEST(SymbolRegistry, ParseToleratesGarbage) {
  auto parsed = SymbolRegistry::parse("not_a_number\tname\n\n12\tgood\nbroken\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.at(12), "good");
}

TEST(SymbolRegistry, ConcurrentInternSafe) {
  auto& reg = SymbolRegistry::instance();
  std::vector<std::thread> threads;
  std::vector<u64> ids(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg, &ids, t] {
      for (int i = 0; i < 200; ++i) {
        u64 id = reg.intern("concurrent::same_name");
        if (i == 0) ids[static_cast<usize>(t)] = id;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(ids[static_cast<usize>(t)], ids[0]);
}

TEST(Demangle, CxxName) {
  EXPECT_EQ(demangle("_Z3foov"), "foo()");
  EXPECT_EQ(demangle("not_mangled"), "not_mangled");
}

}  // namespace
}  // namespace teeperf
