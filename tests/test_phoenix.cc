// Tests for the Phoenix kernel reimplementations: result correctness
// against closed forms / brute force, and the property that threaded and
// sequential runs produce identical checksums (TEST_P sweep over thread
// counts — the Phoenix map/reduce structure must be deterministic).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "phoenix/phoenix.h"

namespace teeperf::phoenix {
namespace {

TEST(Histogram, CountsEveryPixelOnce) {
  auto in = gen_histogram(10'000, 1);
  auto out = run_histogram(in, 3);
  u64 r = 0, g = 0, b = 0;
  for (usize i = 0; i < 256; ++i) {
    r += out.r[i];
    g += out.g[i];
    b += out.b[i];
  }
  EXPECT_EQ(r, 10'000u);
  EXPECT_EQ(g, 10'000u);
  EXPECT_EQ(b, 10'000u);
}

TEST(Histogram, MatchesBruteForce) {
  auto in = gen_histogram(5'000, 2);
  auto out = run_histogram(in, 4);
  std::array<u64, 256> expect_r{};
  for (usize p = 0; p < 5'000; ++p) ++expect_r[in.pixels[p * 3]];
  EXPECT_EQ(out.r, expect_r);
}

TEST(LinReg, RecoversKnownLine) {
  auto in = gen_linreg(200'000, 3);
  auto out = run_linreg(in, 4);
  // Data is y = 3x + 7 ± 32 uniform noise.
  EXPECT_NEAR(out.slope, 3.0, 0.01);
  EXPECT_NEAR(out.intercept, 7.0, 2.0);
  EXPECT_EQ(out.n, 200'000u);
}

TEST(StringMatch, FindsPlantedKeys) {
  auto in = gen_string_match(100'000, 4);
  auto out = run_string_match(in, 4);
  u64 expected = 0;
  for (const auto& w : in.words) {
    for (const auto& k : in.keys) {
      if (w == k) {
        ++expected;
        break;
      }
    }
  }
  EXPECT_EQ(out.matches, expected);
  EXPECT_GT(expected, 0u);  // generator plants ~1/512
  EXPECT_EQ(out.words_scanned, 100'000u);
}

TEST(WordCount, TotalsMatchInput) {
  auto in = gen_word_count(50'000, 5);
  auto out = run_word_count(in, 4);
  EXPECT_EQ(out.total_words, 50'000u);
  EXPECT_GT(out.distinct_words, 100u);
  EXPECT_LE(out.distinct_words, 512u);
  ASSERT_EQ(out.top.size(), 10u);
  // Top list is sorted by frequency.
  for (usize i = 1; i < out.top.size(); ++i) {
    EXPECT_GE(out.top[i - 1].second, out.top[i].second);
  }
}

TEST(WordCount, MatchesBruteForce) {
  auto in = gen_word_count(5'000, 6);
  auto out = run_word_count(in, 2);
  std::map<std::string, u64> brute;
  std::string word;
  for (char c : in.text + "\n") {
    if (c == ' ' || c == '\n') {
      if (!word.empty()) ++brute[word];
      word.clear();
    } else {
      word.push_back(c);
    }
  }
  EXPECT_EQ(out.distinct_words, brute.size());
  EXPECT_EQ(out.top[0].second, [&] {
    u64 best = 0;
    for (auto& [w, n] : brute) best = std::max(best, n);
    return best;
  }());
}

TEST(MatMul, MatchesNaiveSmall) {
  auto in = gen_matmul(17, 7);
  auto out = run_matmul(in, 3);
  u64 expect = 0;
  for (usize i = 0; i < 17; ++i) {
    for (usize j = 0; j < 17; ++j) {
      i64 acc = 0;
      for (usize k = 0; k < 17; ++k) {
        acc += static_cast<i64>(in.a[i * 17 + k]) * in.b[k * 17 + j];
      }
      expect += static_cast<u64>(acc);
    }
  }
  EXPECT_EQ(out.checksum_value, expect);
}

TEST(MatMul, IdentityMatrix) {
  MatMulInput in;
  in.n = 8;
  in.a.assign(64, 0);
  in.b.assign(64, 0);
  for (usize i = 0; i < 8; ++i) {
    in.a[i * 8 + i] = 1;
    for (usize j = 0; j < 8; ++j) in.b[i * 8 + j] = static_cast<i32>(i * 8 + j);
  }
  auto out = run_matmul(in, 2);
  u64 expect = 0;
  for (i32 v : in.b) expect += static_cast<u64>(v);
  EXPECT_EQ(out.checksum_value, expect);
}

TEST(Kmeans, ConvergesToClusterCenters) {
  auto in = gen_kmeans(5'000, 3, 4, 8);
  auto out = run_kmeans(in, 4, 20);
  EXPECT_GE(out.iterations, 1u);
  ASSERT_EQ(out.centroids.size(), 4u * 3u);
  // Generated clusters sit near (c*100, c*100+1, c*100+2) + U[0,10); each
  // recovered centroid must be close to one true center.
  for (usize c = 0; c < 4; ++c) {
    double x = out.centroids[c * 3];
    bool near_any = false;
    for (usize t = 0; t < 4; ++t) {
      if (std::abs(x - (static_cast<double>(t) * 100.0 + 5.0)) < 10.0) near_any = true;
    }
    EXPECT_TRUE(near_any) << "centroid " << c << " at " << x;
  }
}

TEST(Pca, MeanAndCovarianceCorrect) {
  // Two perfectly correlated columns: cov matrix known analytically.
  PcaInput in;
  in.rows = 100;
  in.cols = 2;
  in.data.resize(200);
  for (usize r = 0; r < 100; ++r) {
    in.data[r * 2] = static_cast<double>(r);
    in.data[r * 2 + 1] = 2.0 * static_cast<double>(r) + 1.0;
  }
  auto out = run_pca(in, 3);
  EXPECT_NEAR(out.mean[0], 49.5, 1e-9);
  EXPECT_NEAR(out.mean[1], 100.0, 1e-9);
  // var(0..99) = 841.66..; cov(x,2x+1)=2var; var(2x+1)=4var.
  double var = 0;
  for (usize r = 0; r < 100; ++r) {
    var += (static_cast<double>(r) - 49.5) * (static_cast<double>(r) - 49.5);
  }
  var /= 99.0;
  EXPECT_NEAR(out.cov[0], var, 1e-6);
  EXPECT_NEAR(out.cov[1], 2 * var, 1e-6);
  EXPECT_NEAR(out.cov[3], 4 * var, 1e-6);
  EXPECT_DOUBLE_EQ(out.cov[1], out.cov[2]);  // symmetry
}

TEST(ReverseIndex, IndexesAllLinks) {
  auto in = gen_reverse_index(200, 10, 21);
  auto out = run_reverse_index(in, 4);
  EXPECT_EQ(out.total_links, 200u * 10u);
  EXPECT_GT(out.distinct_targets, 50u);
  EXPECT_LE(out.distinct_targets, 256u);
  ASSERT_EQ(out.top.size(), 10u);
  for (usize i = 1; i < out.top.size(); ++i) {
    EXPECT_GE(out.top[i - 1].second, out.top[i].second);
  }
}

TEST(ReverseIndex, MatchesBruteForce) {
  auto in = gen_reverse_index(50, 5, 22);
  auto out = run_reverse_index(in, 3);
  u64 brute_links = 0;
  std::set<std::string> brute_targets;
  for (const auto& doc : in.documents) {
    usize pos = 0;
    while ((pos = doc.find("href=\"", pos)) != std::string::npos) {
      pos += 6;
      usize end = doc.find('"', pos);
      brute_targets.insert(doc.substr(pos, end - pos));
      ++brute_links;
      pos = end + 1;
    }
  }
  EXPECT_EQ(out.total_links, brute_links);
  EXPECT_EQ(out.distinct_targets, brute_targets.size());
}

// ---- thread-count determinism sweep -----------------------------------------

class ThreadSweep : public ::testing::TestWithParam<usize> {};

TEST_P(ThreadSweep, HistogramDeterministic) {
  auto in = gen_histogram(50'000, 11);
  EXPECT_EQ(run_histogram(in, GetParam()).checksum(),
            run_histogram(in, 1).checksum());
}

TEST_P(ThreadSweep, LinRegDeterministic) {
  auto in = gen_linreg(100'000, 12);
  auto par = run_linreg(in, GetParam());
  auto seq = run_linreg(in, 1);
  EXPECT_NEAR(par.slope, seq.slope, 1e-9);
  EXPECT_NEAR(par.intercept, seq.intercept, 1e-6);
}

TEST_P(ThreadSweep, StringMatchDeterministic) {
  auto in = gen_string_match(30'000, 13);
  EXPECT_EQ(run_string_match(in, GetParam()).checksum(),
            run_string_match(in, 1).checksum());
}

TEST_P(ThreadSweep, WordCountDeterministic) {
  auto in = gen_word_count(20'000, 14);
  EXPECT_EQ(run_word_count(in, GetParam()).checksum(),
            run_word_count(in, 1).checksum());
}

TEST_P(ThreadSweep, MatMulDeterministic) {
  auto in = gen_matmul(48, 15);
  EXPECT_EQ(run_matmul(in, GetParam()).checksum(), run_matmul(in, 1).checksum());
}

TEST_P(ThreadSweep, KmeansDeterministic) {
  auto in = gen_kmeans(3'000, 4, 4, 16);
  EXPECT_EQ(run_kmeans(in, GetParam()).checksum(), run_kmeans(in, 1).checksum());
}

TEST_P(ThreadSweep, ReverseIndexDeterministic) {
  auto in = gen_reverse_index(300, 8, 23);
  EXPECT_EQ(run_reverse_index(in, GetParam()).checksum(),
            run_reverse_index(in, 1).checksum());
}

TEST_P(ThreadSweep, PcaDeterministic) {
  auto in = gen_pca(300, 16, 17);
  EXPECT_EQ(run_pca(in, GetParam()).checksum(), run_pca(in, 1).checksum());
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1, 2, 3, 4, 8));

// ---- suite wrapper -----------------------------------------------------------

TEST(Suite, AllNamesConstructAndRun) {
  SuiteParams params;
  params.scale = 1;
  for (const auto& name : suite_names()) {
    auto bench = make_benchmark(name);
    ASSERT_NE(bench, nullptr) << name;
    EXPECT_EQ(bench->name(), name);
  }
}

TEST(Suite, UnknownNameReturnsNull) {
  EXPECT_EQ(make_benchmark("reverse_index_of_doom"), nullptr);
}

TEST(Suite, CallDensityOrderingMatchesFigure4) {
  // Figure 4's shape depends on string_match having by far the highest call
  // density and linear_regression the lowest.
  SuiteParams params;
  std::map<std::string, double> calls_per_unit;
  for (const auto& name : suite_names()) {
    auto bench = make_benchmark(name);
    bench->prepare(params);
    calls_per_unit[name] = static_cast<double>(bench->approx_calls());
  }
  EXPECT_GT(calls_per_unit["string_match"], calls_per_unit["word_count"]);
  EXPECT_GT(calls_per_unit["word_count"], calls_per_unit["histogram"]);
  EXPECT_GT(calls_per_unit["histogram"], calls_per_unit["matrix_multiply"]);
  EXPECT_GT(calls_per_unit["matrix_multiply"], calls_per_unit["linear_regression"]);
}

TEST(Suite, RunProducesStableChecksum) {
  SuiteParams params;
  auto bench = make_benchmark("histogram");
  bench->prepare(params);
  u64 a = bench->run(2);
  u64 b = bench->run(4);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace teeperf::phoenix
