// Tests for the recorder (stage #2): runtime hooks, scopes, filters,
// dynamic activation, multithreaded recording, dump/load round trip.
#include <gtest/gtest.h>

#include <unistd.h>

#include <map>
#include <thread>

#include "analyzer/profile.h"
#include "common/fileutil.h"
#include "core/profiler.h"

namespace teeperf {
namespace {

// RAII: every test leaves the global runtime detached.
class RecorderTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (runtime::attached()) runtime::detach();
    runtime::reset_thread_for_test();
  }

  std::unique_ptr<Recorder> make(RecorderOptions opts = {}) {
    opts.counter_mode = CounterMode::kSteadyClock;
    auto rec = Recorder::create(opts);
    EXPECT_NE(rec, nullptr);
    return rec;
  }
};

TEST_F(RecorderTest, CreateFormatsLog) {
  auto rec = make();
  EXPECT_TRUE(rec->log().valid());
  EXPECT_EQ(rec->log().size(), 0u);
  EXPECT_TRUE(rec->log().active());
  EXPECT_TRUE(rec->log().flags() & log_flags::kMultithread);
}

TEST_F(RecorderTest, ScopeEmitsCallAndReturn) {
  auto rec = make();
  ASSERT_TRUE(rec->attach());
  u64 id = SymbolRegistry::instance().intern("unit::work");
  {
    Scope s(id);
  }
  rec->detach();
  ASSERT_EQ(rec->log().size(), 2u);
  EXPECT_EQ(rec->log().entry(0).kind(), EventKind::kCall);
  EXPECT_EQ(rec->log().entry(0).addr, id);
  EXPECT_EQ(rec->log().entry(1).kind(), EventKind::kReturn);
  EXPECT_EQ(rec->log().entry(1).addr, id);
  EXPECT_GE(rec->log().entry(1).counter(), rec->log().entry(0).counter());
}

TEST_F(RecorderTest, NoEventsWhenDetached) {
  auto rec = make();
  u64 id = SymbolRegistry::instance().intern("unit::ignored");
  {
    Scope s(id);
  }
  EXPECT_EQ(rec->log().size(), 0u);
}

TEST_F(RecorderTest, OnlyOneSessionAtATime) {
  auto rec1 = make();
  auto rec2 = make();
  ASSERT_TRUE(rec1->attach());
  EXPECT_FALSE(rec2->attach());
  rec1->detach();
  EXPECT_TRUE(rec2->attach());
}

TEST_F(RecorderTest, DynamicStartStop) {
  auto rec = make();
  ASSERT_TRUE(rec->attach());
  u64 id = SymbolRegistry::instance().intern("unit::toggled");

  rec->stop();
  { Scope s(id); }
  EXPECT_EQ(rec->log().size(), 0u);

  rec->start();
  { Scope s(id); }
  EXPECT_EQ(rec->log().size(), 2u);

  rec->stop();
  { Scope s(id); }
  EXPECT_EQ(rec->log().size(), 2u);
}

TEST_F(RecorderTest, RecordMaskSelectsEventKinds) {
  RecorderOptions opts;
  opts.record_returns = false;
  auto rec = make(opts);
  ASSERT_TRUE(rec->attach());
  u64 id = SymbolRegistry::instance().intern("unit::calls_only");
  { Scope s(id); }
  ASSERT_EQ(rec->log().size(), 1u);
  EXPECT_EQ(rec->log().entry(0).kind(), EventKind::kCall);
}

TEST_F(RecorderTest, FilterAllowlist) {
  Filter filter(Filter::Mode::kAllowlist);
  u64 wanted = filter.add_name("unit::wanted");
  u64 unwanted = SymbolRegistry::instance().intern("unit::unwanted");

  RecorderOptions opts;
  opts.filter = &filter;
  auto rec = make(opts);
  ASSERT_TRUE(rec->attach());
  {
    Scope a(wanted);
    Scope b(unwanted);
  }
  rec->detach();
  ASSERT_EQ(rec->log().size(), 2u);
  EXPECT_EQ(rec->log().entry(0).addr, wanted);
  EXPECT_EQ(rec->log().entry(1).addr, wanted);
}

TEST_F(RecorderTest, FilterDenylist) {
  Filter filter(Filter::Mode::kDenylist);
  u64 noisy = filter.add_name("unit::noisy");
  u64 kept = SymbolRegistry::instance().intern("unit::kept");

  RecorderOptions opts;
  opts.filter = &filter;
  auto rec = make(opts);
  ASSERT_TRUE(rec->attach());
  {
    Scope a(noisy);
    Scope b(kept);
  }
  rec->detach();
  ASSERT_EQ(rec->log().size(), 2u);
  EXPECT_EQ(rec->log().entry(0).addr, kept);
}

TEST_F(RecorderTest, TeeperfScopeMacroRegistersName) {
  auto rec = make();
  ASSERT_TRUE(rec->attach());
  {
    TEEPERF_SCOPE("unit::macro_scope");
  }
  rec->detach();
  ASSERT_EQ(rec->log().size(), 2u);
  EXPECT_EQ(SymbolRegistry::instance().name_of(rec->log().entry(0).addr),
            "unit::macro_scope");
}

TEST_F(RecorderTest, MultithreadedRecordingKeepsPerThreadOrder) {
  RecorderOptions opts;
  opts.max_entries = 1u << 16;
  auto rec = make(opts);
  ASSERT_TRUE(rec->attach());

  u64 outer = SymbolRegistry::instance().intern("mt::outer");
  u64 inner = SymbolRegistry::instance().intern("mt::inner");

  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        Scope a(outer);
        Scope b(inner);
      }
    });
  }
  for (auto& th : threads) th.join();
  rec->detach();

  // Per thread: perfectly nested call/return sequences.
  std::map<u64, int> depth;
  std::map<u64, u64> events;
  for (u64 i = 0; i < rec->log().size(); ++i) {
    const LogEntry& e = rec->log().entry(i);
    int& d = depth[e.tid];
    if (e.kind() == EventKind::kCall) {
      ++d;
      EXPECT_LE(d, 2);
    } else {
      --d;
      EXPECT_GE(d, 0);
    }
    ++events[e.tid];
  }
  for (auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
  EXPECT_EQ(events.size(), static_cast<usize>(kThreads));
  for (auto& [tid, n] : events) EXPECT_EQ(n, kIters * 4u) << "tid " << tid;
}

TEST_F(RecorderTest, StatsCountDrops) {
  RecorderOptions opts;
  opts.max_entries = 4;
  auto rec = make(opts);
  ASSERT_TRUE(rec->attach());
  u64 id = SymbolRegistry::instance().intern("unit::flood");
  for (int i = 0; i < 10; ++i) {
    Scope s(id);
  }
  rec->detach();
  auto st = rec->stats();
  EXPECT_EQ(st.entries, 4u);
  EXPECT_EQ(st.capacity, 4u);
  EXPECT_EQ(st.dropped, 16u);
}

TEST_F(RecorderTest, DumpAndLoadRoundTrip) {
  std::string dir = make_temp_dir("teeperf_rec_");
  auto rec = make();
  ASSERT_TRUE(rec->attach());
  {
    TEEPERF_SCOPE("dump::parent");
    TEEPERF_SCOPE("dump::child");
  }
  rec->detach();
  ASSERT_TRUE(rec->dump(dir + "/run"));
  EXPECT_TRUE(file_exists(dir + "/run.log"));
  EXPECT_TRUE(file_exists(dir + "/run.sym"));

  auto profile = analyzer::Profile::load(dir + "/run");
  ASSERT_TRUE(profile.has_value());
  EXPECT_EQ(profile->recon_stats().entries, 4u);
  ASSERT_EQ(profile->invocations().size(), 2u);
  EXPECT_EQ(profile->name(profile->invocations()[0].method), "dump::parent");
  EXPECT_EQ(profile->name(profile->invocations()[1].method), "dump::child");
  EXPECT_GT(profile->ns_per_tick(), 0.0);
  remove_tree(dir);
}

TEST_F(RecorderTest, NamedShmSession) {
  RecorderOptions opts;
  opts.shm_name = "/teeperf_rec_" + std::to_string(::getpid());
  auto rec = make(opts);
  ASSERT_TRUE(rec->attach());
  {
    TEEPERF_SCOPE("shm::scoped");
  }
  rec->detach();
  EXPECT_EQ(rec->log().size(), 2u);

  // A second process-side mapping sees the same entries.
  SharedMemoryRegion view;
  ASSERT_TRUE(view.open(opts.shm_name));
  ProfileLog adopted;
  ASSERT_TRUE(adopted.adopt(view.data(), view.size()));
  EXPECT_EQ(adopted.size(), 2u);
}

TEST_F(RecorderTest, SoftwareCounterSessionRecords) {
  RecorderOptions opts;
  opts.counter_mode = CounterMode::kSoftware;
  opts.software_counter_yield = 1024;  // single-core safety
  auto rec = Recorder::create(opts);
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->attach());
  for (int i = 0; i < 50; ++i) {
    TEEPERF_SCOPE("swc::tick");
    std::this_thread::yield();
  }
  rec->detach();
  ASSERT_EQ(rec->log().size(), 100u);
  // The counter must have advanced across the run (monotone overall).
  EXPECT_GE(rec->log().entry(99).counter(), rec->log().entry(0).counter());
}

}  // namespace
}  // namespace teeperf
