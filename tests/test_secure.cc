// Tests for the Speicher-lite secure-storage layer: SipHash correctness,
// trusted-counter semantics (sync vs async, recovery), and the secure WAL's
// tamper / reorder / replay / rollback detection.
#include <gtest/gtest.h>

#include "common/fileutil.h"
#include "common/rng.h"
#include "kvstore/coding.h"
#include "kvstore/secure.h"
#include "tee/enclave.h"

namespace teeperf::kvs::secure {
namespace {

MacKey test_key() {
  MacKey k{};
  for (usize i = 0; i < k.size(); ++i) k[i] = static_cast<u8>(i);
  return k;
}

// --- SipHash-2-4 ----------------------------------------------------------------

TEST(SipHash, ReferenceVector) {
  // Reference vectors from the SipHash paper (key 00..0f). The paper lists
  // outputs as byte arrays; as little-endian u64s: 63-byte input 00..3e →
  // bytes "72 45 06 eb 4c 32 8a 95" = 0x958a324ceb064572.
  MacKey key = test_key();
  std::string input;
  for (int i = 0; i < 63; ++i) input.push_back(static_cast<char>(i));
  EXPECT_EQ(siphash24(key, input), 0x958a324ceb064572ull);
  // And the empty-input row: 0x726fdb47dd0e0e31.
  EXPECT_EQ(siphash24(key, ""), 0x726fdb47dd0e0e31ull);
}

TEST(SipHash, KeyedAndDeterministic) {
  MacKey a = test_key();
  MacKey b = test_key();
  b[0] ^= 1;
  EXPECT_EQ(siphash24(a, "payload"), siphash24(a, "payload"));
  EXPECT_NE(siphash24(a, "payload"), siphash24(b, "payload"));
  EXPECT_NE(siphash24(a, "payload"), siphash24(a, "payloae"));
}

TEST(SipHash, AllLengthsUpTo64) {
  MacKey key = test_key();
  Xorshift64 rng(4);
  std::set<u64> macs;
  std::string input;
  for (int len = 0; len <= 64; ++len) {
    macs.insert(siphash24(key, input));
    input.push_back(static_cast<char>(rng.next()));
  }
  EXPECT_EQ(macs.size(), 65u);  // no trivial collisions across lengths
}

// --- trusted counter ---------------------------------------------------------------

class TrustedCounterTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = make_temp_dir("teeperf_tc_"); }
  void TearDown() override { remove_tree(dir_); }
  std::string dir_;
};

TEST_F(TrustedCounterTest, SyncStabilizesEveryIncrement) {
  TrustedCounter c(dir_ + "/ctr", TrustedCounter::Mode::kSync, 0);
  EXPECT_EQ(c.increment(), 1u);
  EXPECT_EQ(c.increment(), 2u);
  EXPECT_EQ(c.stable_value(), 2u);
  EXPECT_EQ(c.hardware_increments(), 2u);
}

TEST_F(TrustedCounterTest, AsyncDefersToFlush) {
  TrustedCounter c(dir_ + "/ctr", TrustedCounter::Mode::kAsync, 0);
  for (int i = 0; i < 100; ++i) c.increment();
  EXPECT_EQ(c.value(), 100u);
  EXPECT_EQ(c.stable_value(), 0u);
  EXPECT_EQ(c.hardware_increments(), 0u);
  ASSERT_TRUE(c.flush().is_ok());
  EXPECT_EQ(c.stable_value(), 100u);
  EXPECT_EQ(c.hardware_increments(), 1u);  // 100 increments, 1 hardware write
}

TEST_F(TrustedCounterTest, RecoversStableValue) {
  {
    TrustedCounter c(dir_ + "/ctr", TrustedCounter::Mode::kAsync, 0);
    for (int i = 0; i < 7; ++i) c.increment();
    ASSERT_TRUE(c.flush().is_ok());
  }
  TrustedCounter again(dir_ + "/ctr", TrustedCounter::Mode::kAsync, 0);
  EXPECT_EQ(again.value(), 7u);
  EXPECT_EQ(again.stable_value(), 7u);
}

TEST_F(TrustedCounterTest, SyncChargesEnclaveCost) {
  tee::CostModel cm = tee::CostModel::zero();
  tee::Enclave e(cm);
  TrustedCounter c(dir_ + "/ctr", TrustedCounter::Mode::kSync,
                   /*increment_cost_ns=*/500'000);
  u64 before = e.charged_ns();
  e.ecall([&] { c.increment(); });
  EXPECT_GE(e.charged_ns() - before, 500'000u);
}

// --- secure WAL ---------------------------------------------------------------------

class SecureWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = make_temp_dir("teeperf_swal_");
    counter_ = std::make_unique<TrustedCounter>(dir_ + "/ctr",
                                                TrustedCounter::Mode::kAsync, 0);
  }
  void TearDown() override { remove_tree(dir_); }

  // Writes n records "payload_<i>" and flushes.
  void write_records(int n) {
    SecureWalWriter w(test_key(), counter_.get());
    ASSERT_TRUE(w.open(dir_ + "/wal", true).is_ok());
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(w.append("payload_" + std::to_string(i)).is_ok());
    }
    ASSERT_TRUE(w.flush().is_ok());
  }

  std::string dir_;
  std::unique_ptr<TrustedCounter> counter_;
};

TEST_F(SecureWalTest, CleanRoundTrip) {
  write_records(10);
  auto result = secure_wal_read(dir_ + "/wal", test_key(), *counter_);
  EXPECT_FALSE(result.tampered);
  EXPECT_FALSE(result.rolled_back);
  ASSERT_EQ(result.records.size(), 10u);
  EXPECT_EQ(result.records[0], "payload_0");
  EXPECT_EQ(result.records[9], "payload_9");
  EXPECT_EQ(result.last_counter, 10u);
}

TEST_F(SecureWalTest, BitFlipDetected) {
  write_records(6);
  auto data = read_file(dir_ + "/wal");
  ASSERT_TRUE(data);
  std::string bad = *data;
  bad[bad.size() / 2] ^= 0x01;
  write_file(dir_ + "/wal", bad);
  auto result = secure_wal_read(dir_ + "/wal", test_key(), *counter_);
  // Either the CRC framing or the MAC catches it; either way: tampered or
  // a short prefix that fails the freshness check.
  EXPECT_TRUE(result.tampered || result.rolled_back);
  EXPECT_LT(result.records.size(), 6u);
}

TEST_F(SecureWalTest, WrongKeyDetected) {
  write_records(3);
  MacKey wrong = test_key();
  wrong[5] ^= 0xff;
  auto result = secure_wal_read(dir_ + "/wal", wrong, *counter_);
  EXPECT_TRUE(result.tampered);
  EXPECT_TRUE(result.records.empty());
}

TEST_F(SecureWalTest, RollbackDetected) {
  // First epoch: 4 records, flushed (stable counter = 4). Keep the file.
  write_records(4);
  auto old_file = read_file(dir_ + "/wal");
  ASSERT_TRUE(old_file);

  // Second epoch: append 4 more through a new writer session.
  {
    SecureWalWriter w(test_key(), counter_.get());
    ASSERT_TRUE(w.open(dir_ + "/wal", true).is_ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(w.append("epoch2_" + std::to_string(i)).is_ok());
    }
    ASSERT_TRUE(w.flush().is_ok());
  }

  // Attack: restore the old (validly MAC'd) file. MACs check out, but the
  // trusted counter says the world moved on.
  write_file(dir_ + "/wal", *old_file);
  auto result = secure_wal_read(dir_ + "/wal", test_key(), *counter_);
  EXPECT_FALSE(result.tampered);
  EXPECT_TRUE(result.rolled_back);
  EXPECT_EQ(result.last_counter, 4u);
  EXPECT_EQ(counter_->stable_value(), 12u);
}

TEST_F(SecureWalTest, TruncationDetectedAsRollback) {
  write_records(10);
  auto data = read_file(dir_ + "/wal");
  ASSERT_TRUE(data);
  // Drop the last ~3 records (cut at a plausible frame boundary is not
  // required; the CRC framing discards the torn tail).
  write_file(dir_ + "/wal", std::string_view(*data).substr(0, data->size() / 2));
  auto result = secure_wal_read(dir_ + "/wal", test_key(), *counter_);
  EXPECT_TRUE(result.rolled_back);
  EXPECT_LT(result.last_counter, 10u);
}

TEST_F(SecureWalTest, ReorderingDetected) {
  write_records(4);
  // Swap two full records by re-framing: simplest robust approach — read
  // raw frames via WalReader, swap, rewrite with fresh CRC framing.
  std::vector<std::string> raw;
  ASSERT_TRUE(WalReader::read_all(dir_ + "/wal", &raw).is_ok());
  ASSERT_EQ(raw.size(), 4u);
  std::swap(raw[1], raw[2]);
  WalWriter w;
  ASSERT_TRUE(w.open(dir_ + "/wal", true).is_ok());
  for (auto& r : raw) ASSERT_TRUE(w.append(r).is_ok());
  w.close();

  auto result = secure_wal_read(dir_ + "/wal", test_key(), *counter_);
  EXPECT_TRUE(result.tampered);  // chained MAC breaks at the swap
  EXPECT_LE(result.records.size(), 1u);
}

TEST_F(SecureWalTest, AsyncCounterAmortizesHardwareWrites) {
  SecureWalWriter w(test_key(), counter_.get());
  ASSERT_TRUE(w.open(dir_ + "/wal", true).is_ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(w.append("x").is_ok());
  }
  ASSERT_TRUE(w.flush().is_ok());
  EXPECT_EQ(counter_->hardware_increments(), 1u);

  TrustedCounter sync_counter(dir_ + "/ctr2", TrustedCounter::Mode::kSync, 0);
  SecureWalWriter w2(test_key(), &sync_counter);
  ASSERT_TRUE(w2.open(dir_ + "/wal2", true).is_ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(w2.append("x").is_ok());
  }
  EXPECT_EQ(sync_counter.hardware_increments(), 50u);
}

// --- sealed tables ---------------------------------------------------------------

class SealTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = make_temp_dir("teeperf_seal_");
    write_file(dir_ + "/t.sst", "pretend this is an sstable payload");
  }
  void TearDown() override { remove_tree(dir_); }
  std::string dir_;
};

TEST_F(SealTest, SealVerifyRoundTrip) {
  TrustedCounter c(dir_ + "/ctr", TrustedCounter::Mode::kSync, 0);
  c.increment();
  ASSERT_TRUE(secure_table_seal(dir_ + "/t.sst", test_key(), c).is_ok());
  auto verdict = secure_table_verify(dir_ + "/t.sst", test_key(), 1);
  EXPECT_TRUE(verdict.ok);
  EXPECT_EQ(verdict.epoch, 1u);
}

TEST_F(SealTest, ModifiedFileDetected) {
  TrustedCounter c(dir_ + "/ctr", TrustedCounter::Mode::kSync, 0);
  ASSERT_TRUE(secure_table_seal(dir_ + "/t.sst", test_key(), c).is_ok());
  append_file(dir_ + "/t.sst", "!");
  auto verdict = secure_table_verify(dir_ + "/t.sst", test_key());
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(verdict.tampered);
}

TEST_F(SealTest, MissingSidecarIsTampered) {
  auto verdict = secure_table_verify(dir_ + "/t.sst", test_key());
  EXPECT_TRUE(verdict.tampered);
}

TEST_F(SealTest, StaleEpochDetected) {
  TrustedCounter c(dir_ + "/ctr", TrustedCounter::Mode::kSync, 0);
  c.increment();  // epoch 1
  ASSERT_TRUE(secure_table_seal(dir_ + "/t.sst", test_key(), c).is_ok());
  auto old_sidecar = read_file(dir_ + "/t.sst.mac");
  auto old_table = read_file(dir_ + "/t.sst");

  // A newer sealing happens (epoch 2); the manifest now requires >= 2.
  c.increment();
  write_file(dir_ + "/t.sst", "new table contents");
  ASSERT_TRUE(secure_table_seal(dir_ + "/t.sst", test_key(), c).is_ok());

  // Attack: restore the old (validly sealed) pair.
  write_file(dir_ + "/t.sst", *old_table);
  write_file(dir_ + "/t.sst.mac", *old_sidecar);
  auto verdict = secure_table_verify(dir_ + "/t.sst", test_key(), 2);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(verdict.tampered);  // the MAC is valid...
  EXPECT_TRUE(verdict.stale);      // ...but the epoch is behind
}

TEST_F(SealTest, SwappedSidecarDetected) {
  TrustedCounter c(dir_ + "/ctr", TrustedCounter::Mode::kSync, 0);
  write_file(dir_ + "/other.sst", "a different table");
  ASSERT_TRUE(secure_table_seal(dir_ + "/t.sst", test_key(), c).is_ok());
  ASSERT_TRUE(secure_table_seal(dir_ + "/other.sst", test_key(), c).is_ok());
  // Cross-wire the sidecars.
  auto other_mac = read_file(dir_ + "/other.sst.mac");
  write_file(dir_ + "/t.sst.mac", *other_mac);
  EXPECT_TRUE(secure_table_verify(dir_ + "/t.sst", test_key()).tampered);
}

}  // namespace
}  // namespace teeperf::kvs::secure
