// Fleet-monitoring daemon (src/monitord + common/session_registry):
// Prometheus exposition format down to exact bytes, the exporter round-trip
// property over every registered obs name, session registry publish /
// discover / GC semantics, Monitord attach-detach lifecycle against real
// Recorder sessions, the local HTTP server, and scrape-loop memory
// boundedness.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/fileutil.h"
#include "common/session_registry.h"
#include "core/log_format.h"
#include "core/recorder.h"
#include "monitord/http.h"
#include "monitord/monitor.h"
#include "monitord/prom.h"
#include "obs/metric_names.h"
#include "obs/session.h"

using namespace teeperf;
using namespace teeperf::monitord;

namespace {

std::unique_ptr<obs::SelfTelemetry> anon_obs() {
  auto t = obs::SelfTelemetry::create(obs::TelemetryOptions{});
  EXPECT_NE(t, nullptr);
  return t;
}

// A pid that is certainly dead: fork a child that exits immediately and
// reap it. (Pid recycling within one test is not a realistic hazard.)
u64 dead_pid() {
  pid_t child = fork();
  if (child == 0) _exit(0);
  EXPECT_GT(child, 0);
  int status = 0;
  EXPECT_EQ(waitpid(child, &status, 0), child);
  return static_cast<u64>(child);
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  usize start = 0;
  while (start < text.size()) {
    usize nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    out.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

u64 resident_bytes() {
  auto statm = read_file("/proc/self/statm");
  if (!statm) return 0;
  unsigned long long total = 0, resident = 0;
  std::sscanf(statm->c_str(), "%llu %llu", &total, &resident);
  return static_cast<u64>(resident) * static_cast<u64>(sysconf(_SC_PAGESIZE));
}

}  // namespace

// ---------------------------------------------------------------------------
// PromWriter: exact exposition bytes.

TEST(PromWriter, GoldenExactFormat) {
  PromWriter w;
  // Label values exercising every escape: backslash, quote, newline.
  w.family("log.dropped", obs::MetricType::kCounter,
           {{"session", "s\"1"}, {"pid", "7"}}, 3);
  w.family("log.dropped", obs::MetricType::kCounter,
           {{"session", "s2\\x\n"}, {"pid", "8"}}, 0);
  w.family("log.active", obs::MetricType::kGauge, {}, 1);

  const std::string expected =
      "# HELP teeperf_log_active obs metric log.active\n"
      "# TYPE teeperf_log_active gauge\n"
      "teeperf_log_active 1\n"
      "# HELP teeperf_log_dropped obs metric log.dropped\n"
      "# TYPE teeperf_log_dropped counter\n"
      "teeperf_log_dropped{session=\"s\\\"1\",pid=\"7\"} 3\n"
      "teeperf_log_dropped{session=\"s2\\\\x\\n\",pid=\"8\"} 0\n";
  EXPECT_EQ(w.render(), expected);
}

TEST(PromWriter, SanitizeAndEscape) {
  EXPECT_EQ(PromWriter::sanitize_name("log.tail"), "teeperf_log_tail");
  EXPECT_EQ(PromWriter::sanitize_name("monitord.scrape.latency_us"),
            "teeperf_monitord_scrape_latency_us");
  EXPECT_EQ(PromWriter::escape_label_value("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
}

TEST(PromWriter, HistogramCumulativeInvariant) {
  auto t = anon_obs();
  obs::Histogram h = t->registry().histogram("test.latency");
  ASSERT_TRUE(h.valid());
  h.add(1);
  h.add(3);
  h.add(100);

  PromWriter w;
  w.family_histogram("test.latency", {{"session", "s"}}, *h.slot());
  std::string text = w.render();

  EXPECT_NE(text.find("# TYPE teeperf_test_latency histogram"),
            std::string::npos);
  EXPECT_NE(text.find("teeperf_test_latency_bucket{session=\"s\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("teeperf_test_latency_sum{session=\"s\"} 104"),
            std::string::npos);
  EXPECT_NE(text.find("teeperf_test_latency_count{session=\"s\"} 3"),
            std::string::npos);

  // Buckets are cumulative and non-decreasing, with strictly increasing
  // upper bounds, and the last finite bucket never exceeds +Inf's count.
  u64 prev_cum = 0;
  long long prev_le = -1;
  for (const std::string& line : lines_of(text)) {
    unsigned long long le = 0, cum = 0;
    if (std::sscanf(line.c_str(),
                    "teeperf_test_latency_bucket{session=\"s\",le=\"%llu\"} %llu",
                    &le, &cum) == 2) {
      EXPECT_GT(static_cast<long long>(le), prev_le);
      EXPECT_GE(cum, prev_cum);
      EXPECT_LE(cum, 3u);
      prev_le = static_cast<long long>(le);
      prev_cum = cum;
    }
  }
  EXPECT_EQ(prev_cum, 3u) << "last finite bucket must reach the count";
}

// obs allows one name to be registered as both a gauge and a histogram
// (the watchdog's counter.ns_per_tick_pico is exactly that); the exporter
// must keep the page valid by moving the histogram to "<name>_hist".
TEST(PromWriter, GaugeHistogramNameCollision) {
  auto t = anon_obs();
  t->registry().gauge("counter.ns_per_tick_pico").set(370);
  obs::Histogram h = t->registry().histogram("counter.ns_per_tick_pico");
  ASSERT_TRUE(h.valid());
  h.add(370);

  PromWriter w;
  w.collect(t->registry(), {});
  std::string text = w.render();

  EXPECT_NE(text.find("# TYPE teeperf_counter_ns_per_tick_pico gauge\n"
                      "teeperf_counter_ns_per_tick_pico 370\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE teeperf_counter_ns_per_tick_pico_hist histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("teeperf_counter_ns_per_tick_pico_hist_count 1"),
            std::string::npos)
      << text;
  // The plain gauge family must not contain histogram sample suffixes.
  usize gauge_pos = text.find("# TYPE teeperf_counter_ns_per_tick_pico gauge");
  usize hist_pos = text.find("_hist");
  ASSERT_NE(gauge_pos, std::string::npos);
  ASSERT_NE(hist_pos, std::string::npos);
  EXPECT_LT(gauge_pos, hist_pos) << "scalar family must render first";
}

// Every statically registered obs metric name must round-trip through the
// exporter: a name added to metric_names.h without exporter coverage (or a
// collision after sanitization) fails here.
TEST(PromWriter, EveryRegisteredNameRoundTrips) {
  namespace names = obs::metric_names;
  auto t = anon_obs();
  usize n = sizeof(names::kAllStatic) / sizeof(names::kAllStatic[0]);
  for (usize i = 0; i < n; ++i) {
    obs::Gauge g = t->registry().gauge(names::kAllStatic[i]);
    ASSERT_TRUE(g.valid()) << names::kAllStatic[i];
    g.set(i + 1);
  }

  PromWriter w;
  w.collect(t->registry(), {});
  std::string text = w.render();

  std::set<std::string> sanitized;
  for (usize i = 0; i < n; ++i) {
    std::string fam = PromWriter::sanitize_name(names::kAllStatic[i]);
    EXPECT_TRUE(sanitized.insert(fam).second)
        << "sanitize_name not injective at " << names::kAllStatic[i];
    std::string sample = fam + " " + std::to_string(i + 1) + "\n";
    EXPECT_NE(text.find(sample), std::string::npos)
        << names::kAllStatic[i] << " did not export as " << sample;
    EXPECT_NE(text.find("# HELP " + fam + " obs metric " +
                        names::kAllStatic[i] + "\n"),
              std::string::npos);
  }
}

TEST(PromWriter, DynamicNamesFoldIntoLabels) {
  auto t = anon_obs();
  t->registry().gauge("log.shard.0.tail").set(10);
  t->registry().gauge("log.shard.1.tail").set(20);
  t->registry().counter("app.thread.123.entries").add(7);
  t->registry().counter("app.thread.other.entries").add(2);
  t->registry().gauge("fault.arm.shm.create.fail").set(1);

  PromWriter w;
  w.collect(t->registry(), {{"session", "s"}});
  std::string text = w.render();

  EXPECT_NE(text.find("teeperf_log_shard_tail{session=\"s\",shard=\"0\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("teeperf_log_shard_tail{session=\"s\",shard=\"1\"} 20"),
            std::string::npos);
  EXPECT_NE(
      text.find("teeperf_app_thread_entries{session=\"s\",thread=\"123\"} 7"),
      std::string::npos);
  // The "other" bucket is not per-tid; it keeps its own family.
  EXPECT_NE(text.find("teeperf_app_thread_other_entries{session=\"s\"} 2"),
            std::string::npos);
  // Transient arming requests never leak into the exposition.
  EXPECT_EQ(text.find("fault_arm"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Session registry.

TEST(SessionRegistry, JsonRoundTrip) {
  session_registry::SessionDescriptor d;
  d.name = "teeperf.123.deadbeef";
  d.pid = 123;
  d.log_shm = "/teeperf.123.deadbeef.log";
  d.obs_shm = "/teeperf.123.deadbeef.obs";
  d.prefix = "/tmp/out \"quoted\\path\"";
  d.capacity = 1 << 20;
  d.shards = 8;
  d.start_ns = 987654321;

  session_registry::SessionDescriptor back;
  ASSERT_TRUE(session_registry::from_json(session_registry::to_json(d), &back));
  EXPECT_EQ(back.name, d.name);
  EXPECT_EQ(back.pid, d.pid);
  EXPECT_EQ(back.log_shm, d.log_shm);
  EXPECT_EQ(back.obs_shm, d.obs_shm);
  EXPECT_EQ(back.prefix, d.prefix);
  EXPECT_EQ(back.capacity, d.capacity);
  EXPECT_EQ(back.shards, d.shards);
  EXPECT_EQ(back.start_ns, d.start_ns);

  // Required fields and the name charset are enforced.
  session_registry::SessionDescriptor bad;
  EXPECT_FALSE(session_registry::from_json("{\"pid\":1}", &bad));
  EXPECT_FALSE(
      session_registry::from_json("{\"name\":\"a/b\",\"pid\":1}", &bad));
}

TEST(SessionRegistry, PublishListUnpublish) {
  std::string dir = make_temp_dir("teeperf_reg_");
  EXPECT_TRUE(session_registry::list_sessions(dir + "/missing").empty());

  session_registry::SessionDescriptor d;
  d.name = "teeperf.1.aa";
  d.pid = static_cast<u64>(getpid());
  d.obs_shm = "/teeperf.1.aa.obs";
  ASSERT_TRUE(session_registry::publish_session(dir, d));
  d.name = "teeperf.1.bb";
  ASSERT_TRUE(session_registry::publish_session(dir, d));

  auto sessions = session_registry::list_sessions(dir);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].name, "teeperf.1.aa");  // sorted by name
  EXPECT_EQ(sessions[1].name, "teeperf.1.bb");
  EXPECT_EQ(sessions[0].obs_shm, "/teeperf.1.aa.obs");

  EXPECT_TRUE(session_registry::unpublish_session(dir, "teeperf.1.aa"));
  EXPECT_EQ(session_registry::list_sessions(dir).size(), 1u);

  // A descriptor whose filename disagrees with its body is untrusted.
  ASSERT_TRUE(write_file(dir + "/impostor.json",
                         session_registry::to_json(sessions[1])));
  EXPECT_EQ(session_registry::list_sessions(dir).size(), 1u);

  session_registry::SessionDescriptor traversal;
  traversal.name = "../escape";
  traversal.pid = 1;
  EXPECT_FALSE(session_registry::publish_session(dir, traversal));
}

TEST(SessionRegistry, GcReclaimsDeadSessionsAndSparesLive) {
  std::string dir = make_temp_dir("teeperf_gc_");
  u64 dead = dead_pid();

  // Orphaned shm the dead "session" left behind, in the exact naming scheme.
  std::string base = session_registry::shm_base(dead, 0xabcdef12);
  for (const char* suffix : {".log", ".obs"}) {
    int fd = shm_open((base + suffix).c_str(), O_CREAT | O_RDWR, 0600);
    ASSERT_GE(fd, 0);
    close(fd);
  }
  session_registry::SessionDescriptor stale;
  stale.name = base.substr(1);
  stale.pid = dead;
  stale.log_shm = base + ".log";
  stale.obs_shm = base + ".obs";
  ASSERT_TRUE(session_registry::publish_session(dir, stale));

  // A live session (this process) must survive the sweep.
  session_registry::SessionDescriptor live;
  live.name = "teeperf.live";
  live.pid = static_cast<u64>(getpid());
  ASSERT_TRUE(session_registry::publish_session(dir, live));

  auto r = session_registry::gc_stale_sessions(dir);
  EXPECT_GE(r.descriptors, 1u);
  EXPECT_GE(r.segments, 2u);

  auto left = session_registry::list_sessions(dir);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].name, "teeperf.live");
  int fd = shm_open((base + ".log").c_str(), O_RDONLY, 0600);
  EXPECT_LT(fd, 0) << "orphaned segment must be unlinked";
  if (fd >= 0) close(fd);
  session_registry::unpublish_session(dir, "teeperf.live");
}

TEST(SessionRegistry, GcNeverTouchesForeignShmNames) {
  std::string dir = make_temp_dir("teeperf_gcf_");
  u64 dead = dead_pid();

  // A legacy-style name ("/teeperf.test") does not embed a pid; GC must
  // leave it alone even when a tampered descriptor claims it.
  const char* foreign = "/teeperf.test_monitord_foreign";
  int fd = shm_open(foreign, O_CREAT | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  close(fd);

  session_registry::SessionDescriptor evil;
  evil.name = "teeperf.evil";
  evil.pid = dead;
  evil.log_shm = foreign;
  ASSERT_TRUE(session_registry::publish_session(dir, evil));

  auto r = session_registry::gc_stale_sessions(dir);
  EXPECT_GE(r.descriptors, 1u);  // the stale descriptor itself goes
  fd = shm_open(foreign, O_RDONLY, 0600);
  EXPECT_GE(fd, 0) << "foreign segment must survive GC";
  if (fd >= 0) close(fd);
  shm_unlink(foreign);
}

// ---------------------------------------------------------------------------
// Monitord lifecycle against real Recorder sessions.

namespace {

std::unique_ptr<Recorder> make_session(const std::string& dir,
                                       u64 entries = 4096,
                                       bool telemetry = true) {
  RecorderOptions opts;
  opts.shm_name = "auto";
  opts.session_dir = dir;
  opts.max_entries = entries;
  opts.start_active = true;
  opts.telemetry = telemetry;
  auto rec = Recorder::create(opts);
  EXPECT_NE(rec, nullptr);
  if (rec) {
    EXPECT_FALSE(rec->session_name().empty());
  }
  return rec;
}

MonitordOptions monitor_options(const std::string& dir) {
  MonitordOptions opts;
  opts.session_dir = dir;
  opts.flame_interval_ms = 0;  // rebuild on every poll
  opts.gc_interval_ms = 0;     // GC on every poll
  return opts;
}

}  // namespace

TEST(Monitord, AttachScrapeDetach) {
  std::string dir = make_temp_dir("teeperf_mond_");
  // Telemetry off: exercises the daemon's log-derived fallback gauges (an
  // obs-backed session is covered by MultipleSessionsAndAttachmentCap).
  auto rec = make_session(dir, 4096, /*telemetry=*/false);
  ASSERT_NE(rec, nullptr);
  std::string name = rec->session_name();

  Monitord daemon(monitor_options(dir));
  daemon.poll();
  EXPECT_EQ(daemon.attached_count(), 1u);

  std::string text = daemon.scrape_metrics();
  std::string label = "session=\"" + name + "\",pid=\"" +
                      std::to_string(getpid()) + "\"";
  EXPECT_NE(text.find(label), std::string::npos) << text;
  EXPECT_NE(text.find("teeperf_monitord_sessions_attached 1"),
            std::string::npos);
  EXPECT_NE(text.find("teeperf_session_up{" + label + "} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE teeperf_log_tail gauge"), std::string::npos)
      << text;
  EXPECT_NE(text.find(name), std::string::npos);
  std::string json = daemon.sessions_json();
  EXPECT_NE(json.find("\"name\":\"" + name + "\""), std::string::npos);

  // Clean exit withdraws the descriptor; the daemon detaches on next poll.
  rec.reset();
  daemon.poll();
  EXPECT_EQ(daemon.attached_count(), 0u);
  text = daemon.scrape_metrics();
  EXPECT_EQ(text.find(label), std::string::npos);
  EXPECT_NE(text.find("teeperf_monitord_sessions_attached 0"),
            std::string::npos);
}

TEST(Monitord, MultipleSessionsAndAttachmentCap) {
  std::string dir = make_temp_dir("teeperf_monm_");
  auto a = make_session(dir);
  auto b = make_session(dir);
  auto c = make_session(dir);
  ASSERT_TRUE(a && b && c);

  {
    Monitord daemon(monitor_options(dir));
    daemon.poll();
    EXPECT_EQ(daemon.attached_count(), 3u);
    std::string text = daemon.scrape_metrics();
    for (const auto* rec : {a.get(), b.get(), c.get()}) {
      EXPECT_NE(text.find("session=\"" + rec->session_name() + "\""),
                std::string::npos);
    }
  }

  MonitordOptions capped = monitor_options(dir);
  capped.max_sessions = 2;
  Monitord daemon(capped);
  daemon.poll();
  EXPECT_EQ(daemon.attached_count(), 2u);
}

TEST(Monitord, RollingFlameGraphsFromLiveLog) {
  std::string dir = make_temp_dir("teeperf_monf_");
  auto rec = make_session(dir);
  ASSERT_NE(rec, nullptr);

  // A tiny call tree straight into the shm log: main → leaf → (return ×2).
  ProfileLog& log = rec->log();
  ASSERT_TRUE(log.append(EventKind::kCall, 0x1000, 1, 10));
  ASSERT_TRUE(log.append(EventKind::kCall, 0x2000, 1, 20));
  ASSERT_TRUE(log.append(EventKind::kReturn, 0x2000, 1, 30));
  ASSERT_TRUE(log.append(EventKind::kReturn, 0x1000, 1, 40));

  Monitord daemon(monitor_options(dir));
  daemon.poll();
  ASSERT_EQ(daemon.attached_count(), 1u);

  auto folded = daemon.flamegraph_folded(rec->session_name());
  ASSERT_TRUE(folded.has_value());
  EXPECT_FALSE(folded->empty());
  EXPECT_NE(folded->find(';'), std::string::npos)
      << "expected a nested stack: " << *folded;

  auto svg = daemon.flamegraph_svg(rec->session_name());
  ASSERT_TRUE(svg.has_value());
  EXPECT_NE(svg->find("<svg"), std::string::npos);

  EXPECT_FALSE(daemon.flamegraph_folded("no.such.session").has_value());
}

// The acceptance bound from ISSUE.md: daemon memory stays flat over 100
// scrape cycles against a live session (rolling windows, not unbounded
// accumulation).
TEST(Monitord, ScrapeLoopMemoryBounded) {
  std::string dir = make_temp_dir("teeperf_monb_");
  auto rec = make_session(dir, 1u << 14);
  ASSERT_NE(rec, nullptr);
  ProfileLog& log = rec->log();
  for (u64 i = 0; i < 2000; ++i) {
    log.append(i % 2 ? EventKind::kReturn : EventKind::kCall,
               0x1000 + (i % 16) * 8, 1, i * 3);
  }

  MonitordOptions opts = monitor_options(dir);
  opts.flame_window_entries = 4096;
  Monitord daemon(opts);
  // Warm-up: first poll pays the attach + allocator high-water costs.
  daemon.poll();
  (void)daemon.scrape_metrics();

  u64 before = resident_bytes();
  for (int i = 0; i < 100; ++i) {
    daemon.poll();
    std::string text = daemon.scrape_metrics();
    ASSERT_FALSE(text.empty());
  }
  u64 after = resident_bytes();
  ASSERT_GT(before, 0u);
  EXPECT_LT(after, before + (32ull << 20))
      << "RSS grew by " << (after - before) << " bytes over 100 scrapes";
}

// ---------------------------------------------------------------------------
// Local HTTP server + client.

TEST(MonitordHttp, ServeAndGet) {
  HttpServer server([](const std::string& path) {
    if (path == "/hello") return HttpResponse{200, "text/plain", "world\n"};
    if (path == "/echo?q=1") return HttpResponse{200, "text/plain", "query\n"};
    return HttpResponse{404, "text/plain", "nope\n"};
  });
  std::string error;
  ASSERT_TRUE(server.serve("127.0.0.1:0", &error)) << error;
  ASSERT_GT(server.port(), 0);
  std::string root = "http://127.0.0.1:" + std::to_string(server.port());

  int status = 0;
  std::string body;
  ASSERT_TRUE(http_get(root + "/hello", &status, &body, &error)) << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "world\n");

  ASSERT_TRUE(http_get(root + "/echo?q=1", &status, &body, &error)) << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "query\n");

  ASSERT_TRUE(http_get(root + "/missing", &status, &body, &error)) << error;
  EXPECT_EQ(status, 404);

  server.shutdown();
  EXPECT_FALSE(http_get(root + "/hello", &status, &body, &error));
}
