// R3 fixture: ill-formed shared-memory structs. The path ends in
// obs/layout.h so the linter treats it as an shm layout header. Linted,
// never compiled. test_lint.cc asserts the exact lines below.
#pragma once
#include <string>

struct BadShmRecord {  // line 7: r3 non-trivial member + layout not computed
  unsigned a = 0;
  std::string name;
};

struct BadShmView {  // line 12: r3 pointer member
  int* data = nullptr;
  unsigned n = 0;
};
