// R1 fixture: a probe root that allocates and formats. Linted, never
// compiled. The directory sits under .../core/ so the fixture corpus has a
// probe scope. test_lint.cc asserts the exact rule ids AND line numbers
// below — renumbering this file means updating the test.
#include <cstdlib>
#include <string>

namespace teeperf::runtime {

static void helper_alloc() {
  void* p = malloc(16);  // line 11: r1 call to 'malloc'
  free(p);               // line 12: r1 call to 'free'
}

void on_enter(unsigned long addr) {
  helper_alloc();
  std::string name = "probe";  // line 17: r1 std::string on probe path
  (void)name;
  (void)addr;
}

}  // namespace teeperf::runtime
