// Waiver fixture: the same classes of violation as the other fixtures, each
// carrying a justified `teeperf-lint: allow(...)` escape hatch. Linted,
// never compiled. test_lint.cc asserts this file produces ZERO findings.
#include <atomic>
#include <cstdlib>

namespace teeperf::runtime {

std::atomic<int> g{0};

// A waiver on (or up to three lines above) the signature covers the whole
// function body and stops call-graph traversal into it.
// teeperf-lint: allow(r1): fixture — trusted registration slow path
void on_exit(unsigned long addr) {
  void* p = malloc(8);
  free(p);
  // Line-level waiver: covers exactly this line.
  g.store(1);  // teeperf-lint: allow(r2): fixture — ordering irrelevant here
  (void)addr;
}

}  // namespace teeperf::runtime
