// R4 fixture: fault-point / metric names spelled as raw string literals at
// the use site instead of through the manifest headers. Linted, never
// compiled. test_lint.cc asserts the exact lines below.
namespace fault {
bool fires(const char* name);
}
struct Registry {
  int counter(const char* name);
  int family(const char* name);
};

void f(Registry& reg) {
  fault::fires("shm.create.fail");  // line 13: r4 raw fault-point name
  reg.counter("log.tail");          // line 14: r4 raw metric name
  reg.family("log.dropped");        // line 15: r4 raw exporter family name
}
