// R2 fixture: atomic operations with missing or malformed memory orders.
// Linted, never compiled. test_lint.cc asserts the exact lines below.
#include <atomic>

namespace fixture {

std::atomic<int> g{0};

void f() {
  g.load();   // line 10: r2 implicit seq_cst load
  g.store(1); // line 11: r2 implicit seq_cst store
  int e = 0;
  g.compare_exchange_strong(e, 1,  // line 13: only one order spelled
                            std::memory_order_acq_rel);
  g.compare_exchange_weak(e, 1, std::memory_order_relaxed,  // line 15: failure > success
                          std::memory_order_acquire);
  g.compare_exchange_weak(e, 1, std::memory_order_acq_rel,  // line 17: failure = release
                          std::memory_order_release);
  g.load(std::memory_order_acquire);                   // fine
  g.compare_exchange_weak(e, 1, std::memory_order_acq_rel,
                          std::memory_order_acquire);  // fine
}

}  // namespace fixture
