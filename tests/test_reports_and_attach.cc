// Tests for the analyzer report extensions (thread rollup, CSV export,
// before/after diff), env-driven cross-process attachment, and the
// additional TEE cost-model profiles.
#include <gtest/gtest.h>

#include <cstdlib>
#include <unistd.h>

#include "analyzer/profile.h"
#include "analyzer/report.h"
#include "common/fileutil.h"
#include "common/spin.h"
#include "common/stringutil.h"
#include "core/auto_attach.h"
#include "core/profiler.h"
#include "core/symbol_dump.h"
#include "perfsim/sampler.h"
#include "tee/enclave.h"
#include "tee/epc.h"
#include "tee/sysapi.h"

namespace teeperf {
namespace {

using analyzer::Profile;

class ReportsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (runtime::attached()) runtime::detach();
  }

  Profile record(const std::function<void()>& fn) {
    RecorderOptions opts;
    opts.counter_mode = CounterMode::kSteadyClock;
    auto rec = Recorder::create(opts);
    EXPECT_TRUE(rec->attach());
    fn();
    rec->detach();
    return Profile::from_log(
        rec->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  }
};

TEST_F(ReportsTest, ThreadReportListsEachThread) {
  auto profile = record([] {
    std::thread t([] {
      TEEPERF_SCOPE("rep::worker_fn");
    });
    {
      TEEPERF_SCOPE("rep::main_fn");
    }
    t.join();
  });
  std::string report = analyzer::thread_report(profile);
  EXPECT_NE(report.find("rep::worker_fn"), std::string::npos);
  EXPECT_NE(report.find("rep::main_fn"), std::string::npos);
  // Two distinct tid rows (header + 2 lines minimum).
  EXPECT_GE(std::count(report.begin(), report.end(), '\n'), 3);
}

TEST_F(ReportsTest, CsvExportRowPerInvocation) {
  auto profile = record([] {
    for (int i = 0; i < 3; ++i) {
      TEEPERF_SCOPE("rep::csv_fn");
    }
  });
  std::string csv = analyzer::csv_export(profile);
  auto lines = split(csv, '\n');
  // header + 3 rows + trailing empty
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_TRUE(starts_with(lines[0], "method,tid,depth"));
  EXPECT_NE(lines[1].find("rep::csv_fn"), std::string_view::npos);
  EXPECT_TRUE(ends_with(lines[1], ",1"));  // complete flag
}

TEST_F(ReportsTest, CsvQuotesEmbeddedQuotes) {
  auto profile = record([] {
    TEEPERF_SCOPE("rep::has\"quote");
  });
  std::string csv = analyzer::csv_export(profile);
  EXPECT_NE(csv.find("\"rep::has\"\"quote\""), std::string::npos);
}

TEST_F(ReportsTest, DiffReportShowsDelta) {
  u64 slow = SymbolRegistry::instance().intern("rep::optimize_me");
  auto before = record([&] {
    Scope s(slow);
    spin_for_ns(20'000'000);
  });
  auto after = record([&] {
    Scope s(slow);
    spin_for_ns(1'000'000);
  });
  std::string diff = analyzer::diff_report(before, after);
  EXPECT_NE(diff.find("rep::optimize_me"), std::string::npos);
  EXPECT_NE(diff.find("delta(ms)"), std::string::npos);
  // The improvement must render as a negative delta.
  EXPECT_NE(diff.find("-"), std::string::npos);
}

TEST_F(ReportsTest, CallTreeReportNestsAndSums) {
  auto profile = record([] {
    TEEPERF_SCOPE("tree::root_fn");
    for (int i = 0; i < 2; ++i) {
      TEEPERF_SCOPE("tree::child_fn");
      spin_for_ns(1'000'000);
    }
  });
  std::string tree = analyzer::call_tree_report(profile, 0.0);
  usize root_pos = tree.find("tree::root_fn");
  usize child_pos = tree.find("tree::child_fn");
  ASSERT_NE(root_pos, std::string::npos);
  ASSERT_NE(child_pos, std::string::npos);
  EXPECT_LT(root_pos, child_pos);  // top-down ordering
  EXPECT_NE(tree.find("100.0%"), std::string::npos);  // the <all threads> root
}

TEST_F(ReportsTest, CallTreeFoldsTinyNodes) {
  auto profile = record([] {
    TEEPERF_SCOPE("tree::big");
    spin_for_ns(20'000'000);
    for (int i = 0; i < 3; ++i) {
      TEEPERF_SCOPE("tree::tiny");
    }
  });
  std::string tree = analyzer::call_tree_report(profile, 0.05);
  EXPECT_EQ(tree.find("tree::tiny"), std::string::npos);
  EXPECT_NE(tree.find("(other: 1 callees)"), std::string::npos);
}

TEST_F(ReportsTest, TimelineCsvSortedByThreadAndStart) {
  auto profile = record([] {
    TEEPERF_SCOPE("tl::first");
    TEEPERF_SCOPE("tl::second");
  });
  std::string csv = analyzer::timeline_csv(profile);
  auto lines = split(csv, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "tid,method,start,end,depth");
  EXPECT_NE(lines[1].find("tl::first"), std::string_view::npos);
  EXPECT_TRUE(ends_with(lines[1], ",0"));
  EXPECT_NE(lines[2].find("tl::second"), std::string_view::npos);
  EXPECT_TRUE(ends_with(lines[2], ",1"));
}

TEST_F(ReportsTest, ChromeTraceJsonWellFormed) {
  auto profile = record([] {
    TEEPERF_SCOPE("ct::a\"quoted");
    TEEPERF_SCOPE("ct::b");
  });
  std::string json = analyzer::chrome_trace_json(profile);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("ct::b"), std::string::npos);
  EXPECT_NE(json.find("\\\""), std::string::npos);  // escaped quote in name
  // 2 events → exactly one separating comma between objects.
  EXPECT_NE(json.find("},\n{"), std::string::npos);
}

TEST_F(ReportsTest, GprofFlatReportColumns) {
  auto profile = record([] {
    for (int i = 0; i < 4; ++i) {
      TEEPERF_SCOPE("gp::hot");
      spin_for_ns(2'000'000);
    }
  });
  std::string report = analyzer::gprof_flat_report(profile);
  EXPECT_NE(report.find("Flat profile"), std::string::npos);
  EXPECT_NE(report.find("ms/call"), std::string::npos);
  EXPECT_NE(report.find("gp::hot"), std::string::npos);
  EXPECT_NE(report.find("       4 "), std::string::npos);  // the call count
}

TEST_F(ReportsTest, RingRecorderKeepsNewestWindow) {
  RecorderOptions opts;
  opts.counter_mode = CounterMode::kSteadyClock;
  opts.max_entries = 64;
  opts.ring_buffer = true;
  auto rec = Recorder::create(opts);
  ASSERT_TRUE(rec->attach());
  u64 early = SymbolRegistry::instance().intern("ring::early");
  u64 late = SymbolRegistry::instance().intern("ring::late");
  for (int i = 0; i < 200; ++i) {
    Scope s(early);
  }
  for (int i = 0; i < 20; ++i) {
    Scope s(late);
  }
  rec->detach();
  EXPECT_EQ(rec->log().dropped(), 0u);

  auto profile = Profile::from_log(
      rec->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  // The late scope's 40 events all survive in order.
  usize late_count = 0;
  for (const auto& inv : profile.invocations()) {
    if (inv.method == late) ++late_count;
  }
  EXPECT_EQ(late_count, 20u);
  EXPECT_EQ(profile.recon_stats().mismatched_returns, 0u);

  // Dump normalizes the wrap: the reloaded profile matches.
  std::string dir = make_temp_dir("teeperf_ring_");
  ASSERT_TRUE(rec->dump(dir + "/ring"));
  auto loaded = Profile::load(dir + "/ring");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->invocations().size(), profile.invocations().size());
  remove_tree(dir);
}

TEST(PerfsimReport, FlatReportFormats) {
  if (runtime::attached()) runtime::detach();
  ASSERT_TRUE(runtime::attach(nullptr, CounterMode::kTsc, nullptr));
  u64 hot = SymbolRegistry::instance().intern("pr::hot");
  perfsim::SamplerOptions opts;
  opts.frequency_hz = 2000;
  perfsim::SamplingProfiler sampler(opts);
  ASSERT_TRUE(sampler.start());
  {
    Scope s(hot);
    spin_for_ns(200'000'000);
  }
  sampler.stop();
  runtime::detach();
  std::string report = sampler.flat_report(
      [](u64 id) { return SymbolRegistry::instance().name_of(id); });
  EXPECT_NE(report.find("Samples:"), std::string::npos);
  EXPECT_NE(report.find("pr::hot"), std::string::npos);
  EXPECT_NE(report.find("overhead"), std::string::npos);
}

TEST_F(ReportsTest, BottomUpGroupsByCaller) {
  u64 shared = SymbolRegistry::instance().intern("bu::shared_helper");
  auto profile = record([&] {
    {
      TEEPERF_SCOPE("bu::path_one");
      Scope s(shared);
      spin_for_ns(4'000'000);
    }
    {
      TEEPERF_SCOPE("bu::path_two");
      Scope s(shared);
      spin_for_ns(1'000'000);
    }
  });
  std::string report = analyzer::bottom_up_report(profile);
  usize helper_pos = report.find("bu::shared_helper");
  ASSERT_NE(helper_pos, std::string::npos);
  usize one_pos = report.find("from bu::path_one");
  usize two_pos = report.find("from bu::path_two");
  ASSERT_NE(one_pos, std::string::npos);
  ASSERT_NE(two_pos, std::string::npos);
  EXPECT_LT(one_pos, two_pos);  // heavier caller listed first
}

// --- env-driven attachment (the recorder-wrapper protocol) ------------------

class AutoAttachTest : public ::testing::Test {
 protected:
  void TearDown() override {
    detach_env_session();
    unsetenv("TEEPERF_SHM");
    unsetenv("TEEPERF_COUNTER");
    unsetenv("TEEPERF_SYM");
    if (runtime::attached()) runtime::detach();
  }
};

TEST_F(AutoAttachTest, NoEnvMeansNoop) {
  unsetenv("TEEPERF_SHM");
  EXPECT_FALSE(try_attach_from_env());
  EXPECT_FALSE(attached_from_env());
}

TEST_F(AutoAttachTest, AttachesToWrapperLog) {
  // Simulate the wrapper: create + format a named region.
  std::string name = str_format("/teeperf_aa_%d", getpid());
  SharedMemoryRegion wrapper_side;
  usize bytes = ProfileLog::bytes_for(1024);
  ASSERT_TRUE(wrapper_side.create(name, bytes));
  ProfileLog wrapper_log;
  ASSERT_TRUE(wrapper_log.init(wrapper_side.data(), bytes, 0,
                               log_flags::kActive | log_flags::kRecordCalls |
                                   log_flags::kRecordReturns));

  std::string sym_path = make_temp_dir("teeperf_aa_sym_") + "/out.sym";
  setenv("TEEPERF_SHM", name.c_str(), 1);
  setenv("TEEPERF_COUNTER", "steady_clock", 1);
  setenv("TEEPERF_SYM", sym_path.c_str(), 1);

  ASSERT_TRUE(try_attach_from_env());
  EXPECT_TRUE(attached_from_env());
  EXPECT_TRUE(try_attach_from_env());  // idempotent

  {
    TEEPERF_SCOPE("aa::through_env");
  }
  detach_env_session();
  EXPECT_FALSE(attached_from_env());

  // Events landed in the wrapper's mapping.
  ASSERT_EQ(wrapper_log.size(), 2u);
  // And the sym sidecar was written at detach.
  auto sym = read_file(sym_path);
  ASSERT_TRUE(sym.has_value());
  EXPECT_NE(sym->find("aa::through_env"), std::string::npos);
}

TEST_F(AutoAttachTest, FilterFromEnvAllowlist) {
  std::string name = str_format("/teeperf_aaf_%d", getpid());
  SharedMemoryRegion wrapper_side;
  usize bytes = ProfileLog::bytes_for(1024);
  ASSERT_TRUE(wrapper_side.create(name, bytes));
  ProfileLog wrapper_log;
  ASSERT_TRUE(wrapper_log.init(wrapper_side.data(), bytes, 0,
                               log_flags::kActive | log_flags::kRecordCalls |
                                   log_flags::kRecordReturns));

  setenv("TEEPERF_SHM", name.c_str(), 1);
  setenv("TEEPERF_FILTER", "allow:aaf::wanted,aaf::also", 1);
  ASSERT_TRUE(try_attach_from_env());
  {
    TEEPERF_SCOPE("aaf::wanted");
    TEEPERF_SCOPE("aaf::noise");
  }
  detach_env_session();

  ASSERT_EQ(wrapper_log.size(), 2u);
  EXPECT_EQ(SymbolRegistry::instance().name_of(wrapper_log.entry(0).addr),
            "aaf::wanted");
}

TEST_F(AutoAttachTest, MalformedFilterRecordsEverything) {
  std::string name = str_format("/teeperf_aam_%d", getpid());
  SharedMemoryRegion wrapper_side;
  usize bytes = ProfileLog::bytes_for(1024);
  ASSERT_TRUE(wrapper_side.create(name, bytes));
  ProfileLog wrapper_log;
  ASSERT_TRUE(wrapper_log.init(wrapper_side.data(), bytes, 0,
                               log_flags::kActive | log_flags::kRecordCalls |
                                   log_flags::kRecordReturns));
  setenv("TEEPERF_SHM", name.c_str(), 1);
  setenv("TEEPERF_FILTER", "not_a_mode:x", 1);
  ASSERT_TRUE(try_attach_from_env());
  {
    TEEPERF_SCOPE("aam::anything");
  }
  detach_env_session();
  EXPECT_EQ(wrapper_log.size(), 2u);
}

TEST_F(AutoAttachTest, BadShmNameFailsCleanly) {
  setenv("TEEPERF_SHM", "/teeperf_definitely_missing", 1);
  EXPECT_FALSE(try_attach_from_env());
  EXPECT_FALSE(runtime::attached());
}

// --- additional TEE profiles -------------------------------------------------

TEST(TeeProfiles, TrustZoneHasNoRdtscTrap) {
  tee::Enclave e(tee::CostModel::trustzone_like());
  e.ecall([] { tee::sys::rdtsc(); });
  EXPECT_EQ(e.counters().rdtsc_traps.load(), 0u);
}

TEST(TeeProfiles, TrustZoneStillTrapsSyscalls) {
  tee::Enclave e(tee::CostModel::trustzone_like());
  e.ecall([] { tee::sys::getpid(); });
  EXPECT_EQ(e.counters().trapped_syscalls.load(), 1u);
}

TEST(TeeProfiles, SevHasFreeTransitions) {
  tee::CostModel sev = tee::CostModel::sev_like();
  EXPECT_EQ(sev.ecall_ns, 0u);
  EXPECT_EQ(sev.eexit_ns, 0u);
  EXPECT_GT(sev.mee_cacheline_ns, 0u);
  tee::Enclave e(sev);
  u64 t0 = e.charged_ns();
  e.ecall([] {});
  EXPECT_EQ(e.charged_ns(), t0);
}

TEST(TeeProfiles, SyscallCostOrderingSgxWorst) {
  // The multi-TEE ablation's premise.
  EXPECT_GT(tee::CostModel::sgx_like().syscall_ocall_ns,
            tee::CostModel::trustzone_like().syscall_ocall_ns);
  EXPECT_GT(tee::CostModel::trustzone_like().syscall_ocall_ns,
            tee::CostModel::sev_like().syscall_ocall_ns);
}

// --- EPC paging appears in profiles ------------------------------------------

TEST(TeeProfiles, SecurePagingIsAScopedFrame) {
  RecorderOptions opts;
  opts.counter_mode = CounterMode::kSteadyClock;
  auto rec = Recorder::create(opts);
  ASSERT_TRUE(rec->attach());

  tee::CostModel cm = tee::CostModel::zero();
  cm.epc_page_in_ns = 1000;
  tee::Enclave enclave(cm);
  tee::EpcAllocator epc(&enclave, 4);
  auto buf = epc.allocate(8 * tee::kEpcPageSize);
  enclave.ecall([&] {
    for (usize p = 0; p < 8; ++p) buf->touch(p * tee::kEpcPageSize, 1, true);
  });
  rec->detach();

  auto profile = Profile::from_log(
      rec->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  bool saw_paging = false;
  for (const auto& s : profile.method_stats()) {
    if (profile.name(s.method) == "epc::secure_paging") {
      saw_paging = true;
      EXPECT_EQ(s.count, 8u);
    }
  }
  EXPECT_TRUE(saw_paging);
  if (runtime::attached()) runtime::detach();
}

TEST(SamplerFolded, BuildsPathsFromSamples) {
  if (runtime::attached()) runtime::detach();
  ASSERT_TRUE(runtime::attach(nullptr, CounterMode::kTsc, nullptr));
  u64 outer = SymbolRegistry::instance().intern("sf::outer");
  u64 inner = SymbolRegistry::instance().intern("sf::inner");
  perfsim::SamplerOptions opts;
  opts.frequency_hz = 2000;
  perfsim::SamplingProfiler sampler(opts);
  ASSERT_TRUE(sampler.start());
  {
    Scope o(outer);
    Scope i(inner);
    spin_for_ns(200'000'000);
  }
  sampler.stop();
  runtime::detach();

  auto folded = sampler.folded_stacks(
      [](u64 id) { return SymbolRegistry::instance().name_of(id); });
  ASSERT_FALSE(folded.empty());
  u64 nested = 0, total = 0;
  for (auto& [path, n] : folded) {
    total += n;
    if (path == "sf::outer;sf::inner") nested += n;
  }
  // Nearly all samples land with the full two-frame stack.
  EXPECT_GT(nested * 10, total * 8);
}

}  // namespace
}  // namespace teeperf
