// Tests for the LSM store's building blocks: coding, arena, skiplist,
// memtable, write batch, WAL, bloom filter, SSTable, merging iterator.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/fileutil.h"
#include "common/rng.h"
#include "kvstore/arena.h"
#include "kvstore/bloom.h"
#include "kvstore/coding.h"
#include "kvstore/compress.h"
#include "kvstore/dbformat.h"
#include "kvstore/iterator.h"
#include "kvstore/memtable.h"
#include "kvstore/skiplist.h"
#include "kvstore/sstable.h"
#include "kvstore/wal.h"
#include "kvstore/write_batch.h"

namespace teeperf::kvs {
namespace {

class SeededCompressFuzz : public ::testing::TestWithParam<u64> {};

// --- coding -------------------------------------------------------------------

TEST(Coding, FixedRoundTrip) {
  std::string s;
  put_fixed32(&s, 0xdeadbeef);
  put_fixed64(&s, 0x0123456789abcdefull);
  EXPECT_EQ(get_fixed32(s.data()), 0xdeadbeefu);
  EXPECT_EQ(get_fixed64(s.data() + 4), 0x0123456789abcdefull);
}

TEST(Coding, VarintRoundTrip) {
  std::string s;
  std::vector<u64> values{0, 1, 127, 128, 16383, 16384, 1ull << 40, ~0ull};
  for (u64 v : values) put_varint64(&s, v);
  const char* p = s.data();
  const char* limit = p + s.size();
  for (u64 v : values) {
    u64 out = 0;
    ASSERT_TRUE(get_varint64(&p, limit, &out));
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(p, limit);
}

TEST(Coding, VarintTruncationDetected) {
  std::string s;
  put_varint64(&s, 1ull << 40);
  const char* p = s.data();
  u64 out;
  EXPECT_FALSE(get_varint64(&p, s.data() + 2, &out));
}

TEST(Coding, LengthPrefixedRoundTrip) {
  std::string s;
  put_length_prefixed(&s, "hello");
  put_length_prefixed(&s, "");
  const char* p = s.data();
  const char* limit = p + s.size();
  std::string_view a, b;
  ASSERT_TRUE(get_length_prefixed(&p, limit, &a));
  ASSERT_TRUE(get_length_prefixed(&p, limit, &b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
}

// --- internal keys ---------------------------------------------------------------

TEST(InternalKey, PackParse) {
  std::string ik;
  append_internal_key(&ik, "user", 42, ValueType::kValue);
  ParsedInternalKey parsed;
  ASSERT_TRUE(parse_internal_key(ik, &parsed));
  EXPECT_EQ(parsed.user_key, "user");
  EXPECT_EQ(parsed.sequence, 42u);
  EXPECT_EQ(parsed.type, ValueType::kValue);
}

TEST(InternalKey, OrderingUserAscSeqDesc) {
  std::string a10, a5, b1;
  append_internal_key(&a10, "a", 10, ValueType::kValue);
  append_internal_key(&a5, "a", 5, ValueType::kValue);
  append_internal_key(&b1, "b", 1, ValueType::kValue);
  EXPECT_LT(compare_internal_keys(a10, a5), 0);  // newer first
  EXPECT_LT(compare_internal_keys(a5, b1), 0);
  EXPECT_EQ(compare_internal_keys(a10, a10), 0);
}

TEST(InternalKey, ParseRejectsShort) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(parse_internal_key("short", &parsed));
}

// --- arena -----------------------------------------------------------------------

TEST(ArenaTest, AllocatesUsableMemory) {
  Arena arena;
  char* p = arena.allocate(100);
  std::memset(p, 7, 100);
  char* q = arena.allocate(100);
  EXPECT_NE(p, q);
  EXPECT_EQ(p[99], 7);
  EXPECT_GT(arena.memory_usage(), 0u);
}

TEST(ArenaTest, LargeAllocationsGetOwnBlock) {
  Arena arena;
  char* big = arena.allocate(1 << 20);
  std::memset(big, 1, 1 << 20);
  EXPECT_GE(arena.memory_usage(), usize{1} << 20);
}

TEST(ArenaTest, AlignedAllocation) {
  Arena arena;
  arena.allocate(1);
  char* p = arena.allocate_aligned(64);
  EXPECT_EQ(reinterpret_cast<usize>(p) % alignof(void*), 0u);
}

// --- skiplist ---------------------------------------------------------------------

struct IntPtrCmp {
  int operator()(const int* a, const int* b) const {
    // Head node key is null; treat it as -inf.
    if (a == b) return 0;
    if (!a) return -1;
    if (!b) return 1;
    return *a < *b ? -1 : (*a > *b ? 1 : 0);
  }
};

TEST(SkipListTest, InsertAndIterateSorted) {
  Arena arena;
  SkipList<const int*, IntPtrCmp> list(IntPtrCmp{}, &arena);
  Xorshift64 rng(1);
  std::set<int> expected;
  std::vector<std::unique_ptr<int>> keep;
  for (int i = 0; i < 500; ++i) {
    int v = static_cast<int>(rng.next_below(100000));
    if (!expected.insert(v).second) continue;
    keep.push_back(std::make_unique<int>(v));
    list.insert(keep.back().get());
  }
  SkipList<const int*, IntPtrCmp>::Iterator it(&list);
  it.seek_to_first();
  for (int v : expected) {
    ASSERT_TRUE(it.valid());
    EXPECT_EQ(*it.key(), v);
    it.next();
  }
  EXPECT_FALSE(it.valid());
}

TEST(SkipListTest, SeekFindsLowerBound) {
  Arena arena;
  SkipList<const int*, IntPtrCmp> list(IntPtrCmp{}, &arena);
  std::vector<std::unique_ptr<int>> keep;
  for (int v : {10, 20, 30}) {
    keep.push_back(std::make_unique<int>(v));
    list.insert(keep.back().get());
  }
  SkipList<const int*, IntPtrCmp>::Iterator it(&list);
  int probe = 15;
  it.seek(&probe);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(*it.key(), 20);
  int past = 99;
  it.seek(&past);
  EXPECT_FALSE(it.valid());
}

TEST(SkipListTest, Contains) {
  Arena arena;
  SkipList<const int*, IntPtrCmp> list(IntPtrCmp{}, &arena);
  auto v = std::make_unique<int>(5);
  list.insert(v.get());
  int five = 5, six = 6;
  EXPECT_TRUE(list.contains(&five));
  EXPECT_FALSE(list.contains(&six));
}

// --- memtable ------------------------------------------------------------------------

TEST(MemTableTest, AddGet) {
  MemTable mt;
  mt.add(1, ValueType::kValue, "k", "v1");
  std::string value;
  Status s;
  ASSERT_TRUE(mt.get("k", 100, &value, &s));
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(value, "v1");
  EXPECT_FALSE(mt.get("missing", 100, &value, &s));
}

TEST(MemTableTest, NewestVersionWins) {
  MemTable mt;
  mt.add(1, ValueType::kValue, "k", "old");
  mt.add(5, ValueType::kValue, "k", "new");
  std::string value;
  Status s;
  ASSERT_TRUE(mt.get("k", 100, &value, &s));
  EXPECT_EQ(value, "new");
}

TEST(MemTableTest, SnapshotSeesOldVersion) {
  MemTable mt;
  mt.add(1, ValueType::kValue, "k", "old");
  mt.add(5, ValueType::kValue, "k", "new");
  std::string value;
  Status s;
  ASSERT_TRUE(mt.get("k", 3, &value, &s));
  EXPECT_EQ(value, "old");
}

TEST(MemTableTest, TombstoneReportsNotFound) {
  MemTable mt;
  mt.add(1, ValueType::kValue, "k", "v");
  mt.add(2, ValueType::kDeletion, "k", "");
  std::string value;
  Status s;
  ASSERT_TRUE(mt.get("k", 100, &value, &s));
  EXPECT_TRUE(s.is_not_found());
}

TEST(MemTableTest, IteratorOrdered) {
  MemTable mt;
  mt.add(3, ValueType::kValue, "b", "2");
  mt.add(1, ValueType::kValue, "a", "1");
  mt.add(2, ValueType::kValue, "c", "3");
  MemTable::Iterator it(&mt);
  it.seek_to_first();
  std::vector<std::string> keys;
  for (; it.valid(); it.next()) {
    ParsedInternalKey p;
    ASSERT_TRUE(parse_internal_key(it.internal_key(), &p));
    keys.emplace_back(p.user_key);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(mt.entry_count(), 3u);
  EXPECT_GT(mt.approximate_memory_usage(), 0u);
}

TEST(MemTableTest, EmptyValue) {
  MemTable mt;
  mt.add(1, ValueType::kValue, "k", "");
  std::string value = "sentinel";
  Status s;
  ASSERT_TRUE(mt.get("k", 10, &value, &s));
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(value, "");
}

// --- write batch ----------------------------------------------------------------------

TEST(WriteBatchTest, CountAndIterate) {
  WriteBatch b;
  b.put("a", "1");
  b.remove("b");
  b.put("c", "3");
  b.set_base_sequence(100);
  EXPECT_EQ(b.count(), 3u);

  std::vector<std::tuple<u64, ValueType, std::string, std::string>> got;
  ASSERT_TRUE(b.iterate([&](u64 seq, ValueType t, std::string_view k,
                            std::string_view v) {
                 got.emplace_back(seq, t, std::string(k), std::string(v));
               }).is_ok());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::make_tuple(100ull, ValueType::kValue, std::string("a"),
                                    std::string("1")));
  EXPECT_EQ(std::get<0>(got[2]), 102u);
  EXPECT_EQ(std::get<1>(got[1]), ValueType::kDeletion);
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch b;
  b.put("a", "1");
  b.clear();
  EXPECT_EQ(b.count(), 0u);
}

TEST(WriteBatchTest, PayloadRoundTrip) {
  WriteBatch b;
  b.put("key", "value");
  b.set_base_sequence(7);
  WriteBatch c = WriteBatch::from_payload(b.payload());
  EXPECT_EQ(c.count(), 1u);
  EXPECT_EQ(c.base_sequence(), 7u);
}

TEST(WriteBatchTest, CorruptPayloadDetected) {
  WriteBatch b;
  b.put("key", "value");
  std::string bad = b.payload();
  bad.resize(bad.size() - 2);  // truncate mid-record
  WriteBatch c = WriteBatch::from_payload(bad);
  Status s = c.iterate([](u64, ValueType, std::string_view, std::string_view) {});
  EXPECT_TRUE(s.is_corruption());
}

// --- WAL -------------------------------------------------------------------------------

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = make_temp_dir("teeperf_wal_"); }
  void TearDown() override { remove_tree(dir_); }
  std::string dir_;
};

TEST_F(WalTest, AppendReadRoundTrip) {
  WalWriter w;
  ASSERT_TRUE(w.open(dir_ + "/wal", true).is_ok());
  ASSERT_TRUE(w.append("first").is_ok());
  ASSERT_TRUE(w.append("second record").is_ok());
  ASSERT_TRUE(w.flush().is_ok());
  w.close();

  std::vector<std::string> records;
  bool truncated = true;
  ASSERT_TRUE(WalReader::read_all(dir_ + "/wal", &records, &truncated).is_ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(records[1], "second record");
}

TEST_F(WalTest, MissingFileIsEmpty) {
  std::vector<std::string> records{"stale"};
  ASSERT_TRUE(WalReader::read_all(dir_ + "/none", &records).is_ok());
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, TornTailRecovered) {
  WalWriter w;
  ASSERT_TRUE(w.open(dir_ + "/wal", true).is_ok());
  w.append("good one");
  w.append("good two");
  w.flush();
  w.close();
  // Truncate mid-record (simulated crash during write).
  auto data = read_file(dir_ + "/wal");
  ASSERT_TRUE(data);
  write_file(dir_ + "/wal", std::string_view(*data).substr(0, data->size() - 3));

  std::vector<std::string> records;
  bool truncated = false;
  ASSERT_TRUE(WalReader::read_all(dir_ + "/wal", &records, &truncated).is_ok());
  EXPECT_TRUE(truncated);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "good one");
}

TEST_F(WalTest, CorruptCrcStopsRead) {
  WalWriter w;
  ASSERT_TRUE(w.open(dir_ + "/wal", true).is_ok());
  w.append("aaaa");
  w.append("bbbb");
  w.close();
  auto data = read_file(dir_ + "/wal");
  ASSERT_TRUE(data);
  std::string flipped = *data;
  flipped[10] ^= 0xff;  // corrupt the first record's payload
  write_file(dir_ + "/wal", flipped);

  std::vector<std::string> records;
  bool truncated = false;
  ASSERT_TRUE(WalReader::read_all(dir_ + "/wal", &records, &truncated).is_ok());
  EXPECT_TRUE(truncated);
  EXPECT_TRUE(records.empty());

  // Strict mode reports the corruption instead.
  Status s = WalReader::read_all(dir_ + "/wal", &records, &truncated, true);
  EXPECT_TRUE(s.is_corruption());
}

TEST_F(WalTest, AppendModePreservesExisting) {
  {
    WalWriter w;
    ASSERT_TRUE(w.open(dir_ + "/wal", true).is_ok());
    w.append("one");
  }
  {
    WalWriter w;
    ASSERT_TRUE(w.open(dir_ + "/wal", false).is_ok());
    w.append("two");
  }
  std::vector<std::string> records;
  ASSERT_TRUE(WalReader::read_all(dir_ + "/wal", &records).is_ok());
  ASSERT_EQ(records.size(), 2u);
}

// --- bloom ------------------------------------------------------------------------------

TEST(Bloom, NoFalseNegatives) {
  BloomFilterBuilder b(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back("key" + std::to_string(i));
  for (const auto& k : keys) b.add(k);
  std::string filter = b.finish();
  for (const auto& k : keys) EXPECT_TRUE(bloom_may_contain(filter, k)) << k;
}

TEST(Bloom, FalsePositiveRateReasonable) {
  BloomFilterBuilder b(10);
  for (int i = 0; i < 10000; ++i) b.add("present" + std::to_string(i));
  std::string filter = b.finish();
  int fp = 0;
  for (int i = 0; i < 10000; ++i) {
    if (bloom_may_contain(filter, "absent" + std::to_string(i))) ++fp;
  }
  // 10 bits/key → ~1% theoretical; allow generous slack.
  EXPECT_LT(fp, 300);
}

TEST(Bloom, EmptyFilterSaysMaybe) {
  EXPECT_TRUE(bloom_may_contain("", "anything"));
}

TEST(Bloom, EmptyKeySetFilterWorks) {
  BloomFilterBuilder b(10);
  std::string filter = b.finish();
  // No keys added: absent keys are mostly rejected but never crash.
  (void)bloom_may_contain(filter, "x");
}

// --- sstable ---------------------------------------------------------------------------

class SstTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = make_temp_dir("teeperf_sst_"); }
  void TearDown() override { remove_tree(dir_); }

  // Builds a table with n sequential keys; returns the opened table.
  std::unique_ptr<Table> build(usize n, usize value_size = 20) {
    TableBuilder builder(options_);
    for (usize i = 0; i < n; ++i) {
      std::string ik;
      append_internal_key(&ik, key(i), i + 1, ValueType::kValue);
      builder.add(ik, value(i, value_size));
    }
    EXPECT_TRUE(builder.finish(dir_ + "/t.sst").is_ok());
    std::unique_ptr<Table> table;
    EXPECT_TRUE(Table::open(dir_ + "/t.sst", options_, &table).is_ok());
    return table;
  }

  static std::string key(usize i) {
    char buf[16];
    snprintf(buf, sizeof buf, "key%06zu", i);
    return buf;
  }
  static std::string value(usize i, usize size) {
    std::string v = "val" + std::to_string(i) + "_";
    while (v.size() < size) v.push_back('x');
    return v;
  }

  Options options_;
  std::string dir_;
};

TEST_F(SstTest, BuildOpenGet) {
  auto table = build(1000);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->entry_count(), 1000u);
  std::string v;
  Status s;
  ASSERT_TRUE(table->get(key(123), kMaxSequence, &v, &s));
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(v, value(123, 20));
  EXPECT_FALSE(table->get("nope", kMaxSequence, &v, &s));
}

TEST_F(SstTest, GetRespectsSnapshot) {
  TableBuilder builder(options_);
  std::string ik1, ik2;
  append_internal_key(&ik2, "k", 9, ValueType::kValue);  // newer first
  append_internal_key(&ik1, "k", 3, ValueType::kValue);
  builder.add(ik2, "new");
  builder.add(ik1, "old");
  ASSERT_TRUE(builder.finish(dir_ + "/t.sst").is_ok());
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::open(dir_ + "/t.sst", options_, &table).is_ok());

  std::string v;
  Status s;
  ASSERT_TRUE(table->get("k", 100, &v, &s));
  EXPECT_EQ(v, "new");
  ASSERT_TRUE(table->get("k", 5, &v, &s));
  EXPECT_EQ(v, "old");
  EXPECT_FALSE(table->get("k", 2, &v, &s));  // nothing visible that early
}

TEST_F(SstTest, TombstoneInTable) {
  TableBuilder builder(options_);
  std::string ik;
  append_internal_key(&ik, "gone", 5, ValueType::kDeletion);
  builder.add(ik, "");
  ASSERT_TRUE(builder.finish(dir_ + "/t.sst").is_ok());
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::open(dir_ + "/t.sst", options_, &table).is_ok());
  std::string v;
  Status s;
  ASSERT_TRUE(table->get("gone", kMaxSequence, &v, &s));
  EXPECT_TRUE(s.is_not_found());
}

TEST_F(SstTest, IteratorYieldsAllInOrder) {
  auto table = build(2500);  // spans many blocks
  auto it = table->new_iterator();
  usize i = 0;
  for (it->seek_to_first(); it->valid(); it->next(), ++i) {
    EXPECT_EQ(extract_user_key(it->key()), key(i));
  }
  EXPECT_EQ(i, 2500u);
}

TEST_F(SstTest, IteratorSeek) {
  auto table = build(2000);
  auto it = table->new_iterator();
  std::string probe;
  append_internal_key(&probe, key(777), kMaxSequence, ValueType::kValue);
  it->seek(probe);
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(extract_user_key(it->key()), key(777));

  append_internal_key(&probe, "zzzz", kMaxSequence, ValueType::kValue);
  probe.clear();
  append_internal_key(&probe, "zzzz", kMaxSequence, ValueType::kValue);
  it->seek(probe);
  EXPECT_FALSE(it->valid());
}

TEST_F(SstTest, SmallestLargest) {
  auto table = build(100);
  EXPECT_EQ(extract_user_key(table->smallest()), key(0));
  EXPECT_EQ(extract_user_key(table->largest()), key(99));
}

TEST_F(SstTest, CorruptFileRejected) {
  build(100);
  auto data = read_file(dir_ + "/t.sst");
  ASSERT_TRUE(data);
  std::string bad = *data;
  bad[bad.size() / 2] ^= 0xff;  // flip a data-block byte
  write_file(dir_ + "/t.sst", bad);
  std::unique_ptr<Table> table;
  Status s = Table::open(dir_ + "/t.sst", options_, &table);
  EXPECT_FALSE(s.is_ok());
}

TEST_F(SstTest, TruncatedFileRejected) {
  build(100);
  auto data = read_file(dir_ + "/t.sst");
  write_file(dir_ + "/t.sst", std::string_view(*data).substr(0, 20));
  std::unique_ptr<Table> table;
  EXPECT_FALSE(Table::open(dir_ + "/t.sst", options_, &table).is_ok());
}

TEST_F(SstTest, BloomSkipsAbsentKeys) {
  auto table = build(5000);
  std::string v;
  Status s;
  for (int i = 0; i < 200; ++i) {
    table->get("absent" + std::to_string(i), kMaxSequence, &v, &s);
  }
  // The vast majority of absent lookups never touch a block.
  EXPECT_GT(table->bloom_negatives, 150u);
}

// --- compression --------------------------------------------------------------------------

TEST(Compress, RoundTripCompressible) {
  std::string input;
  for (int i = 0; i < 200; ++i) input += "abcabcabc_repeating_payload_";
  std::string packed = lz_compress(input);
  EXPECT_LT(packed.size(), input.size() / 3);
  std::string back;
  ASSERT_TRUE(lz_decompress(packed, &back));
  EXPECT_EQ(back, input);
}

TEST(Compress, RoundTripRandomIncompressible) {
  Xorshift64 rng(9);
  std::string input;
  for (int i = 0; i < 5000; ++i) input.push_back(static_cast<char>(rng.next()));
  std::string packed = lz_compress(input);
  std::string back;
  ASSERT_TRUE(lz_decompress(packed, &back));
  EXPECT_EQ(back, input);
}

TEST(Compress, RoundTripEmptyAndTiny) {
  for (std::string input : {std::string(), std::string("x"), std::string("abc")}) {
    std::string back;
    ASSERT_TRUE(lz_decompress(lz_compress(input), &back));
    EXPECT_EQ(back, input);
  }
}

TEST(Compress, RleStyleSelfOverlap) {
  std::string input(10000, 'z');
  std::string packed = lz_compress(input);
  EXPECT_LT(packed.size(), 64u);
  std::string back;
  ASSERT_TRUE(lz_decompress(packed, &back));
  EXPECT_EQ(back, input);
}

TEST(Compress, DecompressRejectsGarbage) {
  std::string back;
  EXPECT_FALSE(lz_decompress("\x07garbage", &back));  // unknown tag

  // Literal run claiming more bytes than the stream holds. (Built as a
  // std::string: the leading tag byte is 0x00, which a C literal would
  // truncate at.)
  std::string truncated;
  truncated.push_back('\x00');
  truncated.push_back('\x50');  // len 80, but nothing follows
  truncated += "short";
  EXPECT_FALSE(lz_decompress(truncated, &back));

  // Match referencing before the start of output.
  std::string bad;
  bad.push_back('\x01');
  bad.push_back('\x09');  // offset 9, but output is empty
  bad.push_back('\x04');
  EXPECT_FALSE(lz_decompress(bad, &back));

  // Truncated varint (all-continuation bytes).
  std::string endless;
  endless.push_back('\x00');
  for (int i = 0; i < 3; ++i) endless.push_back('\xff');
  EXPECT_FALSE(lz_decompress(endless, &back));
}

TEST_P(SeededCompressFuzz, RoundTripsArbitraryStructured) {
  Xorshift64 rng(GetParam());
  std::string input;
  std::vector<std::string> vocab;
  for (int i = 0; i < 20; ++i) vocab.push_back(rng.next_word(3 + rng.next_below(20)));
  while (input.size() < 20000) {
    input += vocab[rng.next_below(vocab.size())];
    if (rng.next_bool(0.1)) input.push_back(static_cast<char>(rng.next()));
  }
  std::string back;
  ASSERT_TRUE(lz_decompress(lz_compress(input), &back));
  EXPECT_EQ(back, input);
}

TEST_F(SstTest, CompressedTableRoundTrips) {
  options_.compress_blocks = true;
  auto table = build(3000, 64);  // repetitive values compress well
  ASSERT_NE(table, nullptr);
  EXPECT_GT(table->compressed_blocks, 0u);

  std::string v;
  Status s;
  for (usize i = 0; i < 3000; i += 113) {
    ASSERT_TRUE(table->get(key(i), kMaxSequence, &v, &s)) << i;
    EXPECT_EQ(v, value(i, 64));
  }
  auto it = table->new_iterator();
  usize n = 0;
  for (it->seek_to_first(); it->valid(); it->next()) ++n;
  EXPECT_EQ(n, 3000u);
}

TEST_F(SstTest, CompressionShrinksFile) {
  auto raw_table = build(3000, 64);
  u64 raw_size = raw_table->file_size();
  remove_file(dir_ + "/t.sst");
  options_.compress_blocks = true;
  auto packed_table = build(3000, 64);
  EXPECT_LT(packed_table->file_size(), raw_size * 3 / 4);
}

TEST_F(SstTest, CorruptCompressedBlockRejected) {
  options_.compress_blocks = true;
  build(3000, 64);
  auto data = read_file(dir_ + "/t.sst");
  ASSERT_TRUE(data);
  // Flip a byte inside the first data block payload (past the prefix).
  std::string bad = *data;
  bad[10] ^= 0xff;
  write_file(dir_ + "/t.sst", bad);
  std::unique_ptr<Table> table;
  EXPECT_FALSE(Table::open(dir_ + "/t.sst", options_, &table).is_ok());
}

// --- WAL crash-point fuzz -------------------------------------------------------

// Property: truncating the WAL at *any* byte offset yields a recoverable
// prefix — read_all returns some prefix of the written records and never
// returns a corrupted or reordered one.
TEST_F(WalTest, CrashAtEveryOffsetYieldsCleanPrefix) {
  std::vector<std::string> written;
  {
    WalWriter w;
    ASSERT_TRUE(w.open(dir_ + "/wal", true).is_ok());
    Xorshift64 rng(3);
    for (int i = 0; i < 12; ++i) {
      std::string rec = "record_" + std::to_string(i) + "_" +
                        rng.next_word(rng.next_below(40));
      written.push_back(rec);
      ASSERT_TRUE(w.append(rec).is_ok());
    }
    w.flush();
  }
  auto full = read_file(dir_ + "/wal");
  ASSERT_TRUE(full);

  for (usize cut = 0; cut <= full->size(); cut += 7) {
    write_file(dir_ + "/wal_cut", std::string_view(*full).substr(0, cut));
    std::vector<std::string> got;
    ASSERT_TRUE(WalReader::read_all(dir_ + "/wal_cut", &got).is_ok()) << cut;
    ASSERT_LE(got.size(), written.size()) << cut;
    for (usize i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], written[i]) << "cut=" << cut << " record " << i;
    }
  }
}

// --- merging iterator --------------------------------------------------------------------

class VecIter : public Iterator {
 public:
  explicit VecIter(std::vector<std::pair<std::string, std::string>> kvs)
      : kvs_(std::move(kvs)) {}
  bool valid() const override { return pos_ < kvs_.size(); }
  void seek_to_first() override { pos_ = 0; }
  void seek(std::string_view target) override {
    pos_ = 0;
    while (valid() && compare_internal_keys(kvs_[pos_].first, target) < 0) ++pos_;
  }
  void next() override { ++pos_; }
  std::string_view key() const override { return kvs_[pos_].first; }
  std::string_view value() const override { return kvs_[pos_].second; }

 private:
  std::vector<std::pair<std::string, std::string>> kvs_;
  usize pos_ = 0;
};

std::string ik(std::string_view user, u64 seq) {
  std::string s;
  append_internal_key(&s, user, seq, ValueType::kValue);
  return s;
}

TEST(MergingIterator, InterleavesSorted) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VecIter>(
      std::vector<std::pair<std::string, std::string>>{{ik("a", 1), "1"},
                                                       {ik("c", 1), "3"}}));
  children.push_back(std::make_unique<VecIter>(
      std::vector<std::pair<std::string, std::string>>{{ik("b", 1), "2"},
                                                       {ik("d", 1), "4"}}));
  auto merged = new_merging_iterator(std::move(children));
  std::string got;
  for (merged->seek_to_first(); merged->valid(); merged->next()) {
    got += merged->value();
  }
  EXPECT_EQ(got, "1234");
}

TEST(MergingIterator, SameUserKeyNewestFirst) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VecIter>(
      std::vector<std::pair<std::string, std::string>>{{ik("k", 5), "new"}}));
  children.push_back(std::make_unique<VecIter>(
      std::vector<std::pair<std::string, std::string>>{{ik("k", 2), "old"}}));
  auto merged = new_merging_iterator(std::move(children));
  merged->seek_to_first();
  ASSERT_TRUE(merged->valid());
  EXPECT_EQ(merged->value(), "new");
  merged->next();
  ASSERT_TRUE(merged->valid());
  EXPECT_EQ(merged->value(), "old");
}

TEST(MergingIterator, EmptyChildren) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VecIter>(
      std::vector<std::pair<std::string, std::string>>{}));
  auto merged = new_merging_iterator(std::move(children));
  merged->seek_to_first();
  EXPECT_FALSE(merged->valid());
}

TEST(MergingIterator, SeekAcrossChildren) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VecIter>(
      std::vector<std::pair<std::string, std::string>>{{ik("a", 1), "1"},
                                                       {ik("e", 1), "5"}}));
  children.push_back(std::make_unique<VecIter>(
      std::vector<std::pair<std::string, std::string>>{{ik("c", 1), "3"}}));
  auto merged = new_merging_iterator(std::move(children));
  merged->seek(ik("b", kMaxSequence));
  ASSERT_TRUE(merged->valid());
  EXPECT_EQ(merged->value(), "3");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededCompressFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace teeperf::kvs
