// Model of the spill-drain reclaim protocol (DESIGN.md §10; core side in
// ProfileLog::spill_store, host side in drain::Drainer::round) for the
// model checker. One shard, storage a ring of `cap` slots indexed by
// absolute-count % cap; three monotonic cursors:
//
//   tail       writer reservation (fetch_add)
//   published  in-order commit: a writer stores its window, waits until
//              published == its base, then publishes base + n
//   drained    drainer consumption: snapshot published, copy the window
//              [drained, snap) (capped at chunk_entries) out to the spill
//              file, zero the consumed slots, then advance drained
//
// Writer steps per flush: reserve; store × n (blocked until the window fits
// the free space, i.e. base + n <= drained + cap — the space wait);
// publish (blocked until published == base). Drainer steps per round:
// snap (blocked until there is consumable work); consume (copy + zero);
// advance. A writer may crash after any step (kLogFlushDie /
// kLogAppendDie), leaving a reserved-but-unpublished window that wedges
// later publishers — exactly the real protocol's behavior when the app is
// SIGKILLed mid-flush.
//
// IMPORTANT: this model blocks threads through enabled() conditions that
// read OTHER threads' variables (drained, published). The checker's
// sleep-set reduction only tracks next_action() footprints, so it can put
// to sleep a thread whose wake-up is another thread's step on a variable
// the sleeper never names — unsound here. Spill configurations must run
// with reduce = false; they are sized for the plain exhaustive DFS.
//
// The force-advance overflow path (a dead drainer exhausting the writer's
// spin budget, entries discarded and counted dropped) is runtime policy,
// not protocol: the model has no drop path, writers block forever and the
// checker treats the blocked state as terminal. tests/test_drain.cc covers
// force-advance behaviorally.
//
// Three seeded protocol bugs prove the checker can see a violation:
//   kNoSpaceCheck   — writers skip the space wait: a wrapped store clobbers
//                     a published-but-undrained slot (entry lost).
//   kNoReclaimZero  — the drainer consumes without zeroing: a later writer
//                     that reserves the recycled slot and crashes before
//                     storing leaves the STALE value behind, and recovery
//                     resurrects an entry that was already spilled.
//   kConsumeToTail  — the drainer snapshots tail instead of published:
//                     reserved-but-unstored slots are spilled as zeros
//                     (torn entries in a chunk file).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "tests/model/model_checker.h"
#include "tests/model/shm_log_model.h"  // WriterProgram

namespace teeperf::model {

enum class SpillBug {
  kNone,
  kNoSpaceCheck,   // writer side: store without the space wait
  kNoReclaimZero,  // drainer side: advance without zeroing consumed slots
  kConsumeToTail,  // drainer side: consume past published
};

class SpillLogModel {
 public:
  static constexpr int kCapacity = 4;    // ring slots (<= this per config)
  static constexpr int kMaxWriters = 2;

  struct WriterState {
    u8 pc = 0;
    u8 base = 0;  // absolute base of the current flush's window
  };
  struct DrainerState {
    u8 pc = 0;
    u8 snap = 0;  // published snapshot for the current round
    u8 len = 0;   // entries consumed this round, pending the advance
  };
  struct State {
    std::array<u8, kCapacity> slots{};  // 0 = never written / reclaimed
    u8 tail = 0;                        // absolute counts, monotonic
    u8 published = 0;
    u8 drained = 0;
    std::array<WriterState, kMaxWriters> w{};
    DrainerState d;
    std::vector<u8> spilled;  // what the drainer copied out, in order
    // Ghost state (not part of the protocol, excluded from fingerprints):
    // the absolute position of every executed store, so the terminal check
    // can tell a genuine tombstone from a never-reserved slot exactly.
    std::vector<u8> stored_abs;
  };

  // Thread 0..writers-1 are writers; thread writers is the drainer, running
  // `rounds` snap/consume/advance rounds of at most `chunk` entries each.
  SpillLogModel(std::vector<WriterProgram> writers, int cap, int rounds,
                int chunk, SpillBug bug = SpillBug::kNone)
      : cap_(cap), chunk_(chunk), bug_(bug) {
    for (const WriterProgram& p : writers) {
      std::vector<Step> steps;
      for (usize f = 0; f < p.batches.size(); ++f) {
        int n = p.batches[f];
        steps.push_back(
            {Step::kReserve, static_cast<u8>(f), 0, static_cast<u8>(n)});
        for (int i = 0; i < n; ++i) {
          steps.push_back({Step::kStore, static_cast<u8>(f),
                           static_cast<u8>(i), static_cast<u8>(n)});
        }
        steps.push_back(
            {Step::kPublish, static_cast<u8>(f), 0, static_cast<u8>(n)});
      }
      int len = static_cast<int>(steps.size());
      if (p.crash_after >= 0 && p.crash_after < len) len = p.crash_after;
      steps_.push_back(std::move(steps));
      len_.push_back(len);
    }
    drainer_steps_ = rounds * 3;
  }

  State initial() const { return State{}; }
  int num_threads() const { return static_cast<int>(steps_.size()) + 1; }

  bool enabled(const State& s, int t) const {
    if (t == drainer_thread()) {
      if (s.d.pc >= drainer_steps_) return false;
      if (s.d.pc % 3 == 0) {
        // Snap blocks until there is consumable work — idle rounds would
        // only multiply equivalent schedules.
        u8 limit = bug_ == SpillBug::kConsumeToTail ? s.tail : s.published;
        return limit > s.drained;
      }
      return true;
    }
    const WriterState& w = s.w[t];
    if (w.pc >= len_[static_cast<usize>(t)]) return false;
    const Step& st = steps_[static_cast<usize>(t)][w.pc];
    if (st.kind == Step::kStore && bug_ != SpillBug::kNoSpaceCheck) {
      // The space wait: the whole window must fit the reclaimed ring.
      return static_cast<int>(w.base) + st.n <= s.drained + cap_;
    }
    if (st.kind == Step::kPublish) return s.published == w.base;  // in order
    return true;
  }

  // Coarse footprints only — spill configs run unreduced (see header).
  Action next_action(const State&, int) const { return {0, true}; }

  void step(State* s, int t) const {
    if (t == drainer_thread()) {
      DrainerState& d = s->d;
      switch (d.pc % 3) {
        case 0:  // snap
          d.snap = bug_ == SpillBug::kConsumeToTail ? s->tail : s->published;
          break;
        case 1: {  // consume: copy out, zero (reclaim)
          int len = d.snap - s->drained;
          if (len > chunk_) len = chunk_;
          if (len < 0) len = 0;
          for (int i = 0; i < len; ++i) {
            u8& slot = s->slots[static_cast<usize>((s->drained + i) % cap_)];
            s->spilled.push_back(slot);
            if (bug_ != SpillBug::kNoReclaimZero) slot = 0;
          }
          d.len = static_cast<u8>(len);
          break;
        }
        case 2:  // advance: hand the space back to the writers
          s->drained = static_cast<u8>(s->drained + d.len);
          d.len = 0;
          break;
      }
      ++d.pc;
      return;
    }
    WriterState& w = s->w[t];
    const Step& st = steps_[static_cast<usize>(t)][w.pc];
    switch (st.kind) {
      case Step::kReserve:
        w.base = s->tail;
        s->tail = static_cast<u8>(s->tail + st.n);
        break;
      case Step::kStore:
        s->slots[static_cast<usize>((w.base + st.idx) % cap_)] =
            value_of(t, st.flush, st.idx);
        s->stored_abs.push_back(static_cast<u8>(w.base + st.idx));
        break;
      case Step::kPublish:
        s->published = static_cast<u8>(w.base + st.n);
        break;
    }
    ++w.pc;
  }

  // Recovery = the spilled sequence followed by the live residue
  // [drained, tail) — exactly what load_spill() stitches (chunks, then the
  // compact dump of the remaining windows). Committed work is computed from
  // each thread's RUNTIME pc, not its static program: blocked threads end
  // mid-program and that is a legal terminal.
  std::string check_terminal(const State& s) const {
    int reserved = 0;
    std::vector<u8> stored;
    for (int t = 0; t < num_threads() - 1; ++t) {
      const auto& prog = steps_[static_cast<usize>(t)];
      for (int i = 0; i < s.w[t].pc; ++i) {
        const Step& st = prog[static_cast<usize>(i)];
        if (st.kind == Step::kReserve) reserved += st.n;
        if (st.kind == Step::kStore) {
          stored.push_back(value_of(t, st.flush, st.idx));
        }
      }
    }
    if (s.tail != reserved) {
      return "tail " + std::to_string(s.tail) + " != reserved " +
             std::to_string(reserved);
    }
    if (!(s.drained <= s.published && s.published <= s.tail)) {
      return "cursor order violated: drained " + std::to_string(s.drained) +
             " published " + std::to_string(s.published) + " tail " +
             std::to_string(s.tail);
    }
    if (s.spilled.size() != s.drained) {
      return "spilled " + std::to_string(s.spilled.size()) +
             " entries but drained cursor is " + std::to_string(s.drained);
    }
    for (u8 v : s.spilled) {
      if (v == 0) return "tombstone / unpublished slot spilled to a chunk";
    }
    // Residue: the undrained window, zeros = torn-tail tombstones. Clamped
    // to one lap of the ring, like the real serializer: reservation is
    // ungated, so blocked writers can run tail past drained + cap, and the
    // absolute positions beyond the lap alias slots already scanned (they
    // are reserved-but-unstorable, physically nonexistent).
    int window_hi = s.tail;
    if (window_hi > s.drained + cap_) window_hi = s.drained + cap_;
    std::vector<u8> residue;
    int tombstones = 0;
    for (int a = s.drained; a < window_hi; ++a) {
      u8 v = s.slots[static_cast<usize>(a % cap_)];
      if (v == 0) {
        ++tombstones;
      } else {
        residue.push_back(v);
      }
    }
    // Exactly-once: spilled + residue is the stored multiset.
    std::vector<u8> recovered = s.spilled;
    recovered.insert(recovered.end(), residue.begin(), residue.end());
    std::vector<u8> pool = stored;
    for (u8 v : recovered) {
      bool found = false;
      for (u8& p : pool) {
        if (p == v) {
          p = 0xff;
          found = true;
          break;
        }
      }
      if (!found) {
        return "recovered entry " + std::to_string(v) +
               " was never committed, or twice (clobber or stale "
               "resurrection)";
      }
    }
    for (u8 p : pool) {
      if (p != 0xff) return "committed entry " + std::to_string(p) + " lost";
    }
    // Zeroing invariant, exact via the ghost store positions: a slot in the
    // live window is zero iff its absolute position was never stored (a
    // crashed writer's tombstone, or reclaimed space not yet re-stored).
    int expected_tombstones = 0;
    for (int a = s.drained; a < window_hi; ++a) {
      bool written = false;
      for (u8 w : s.stored_abs) {
        if (w == a) {
          written = true;
          break;
        }
      }
      if (!written) ++expected_tombstones;
    }
    if (tombstones != expected_tombstones) {
      return "tombstone count " + std::to_string(tombstones) +
             " != never-stored window positions " +
             std::to_string(expected_tombstones) +
             " (reclaimed slot not zeroed, or a store lost)";
    }
    // Per-writer program order across the stitched recovery sequence.
    for (int t = 0; t < num_threads() - 1; ++t) {
      int last = -1;
      for (u8 v : recovered) {
        if (writer_of(v) != t) continue;
        int key = order_key(v);
        if (key <= last) {
          return "writer " + std::to_string(t) +
                 " entries out of program order in recovery";
        }
        last = key;
      }
    }
    return "";
  }

  std::string fingerprint(const State& s) const {
    std::string fp;
    fp.reserve(static_cast<usize>(cap_) * 4 + s.spilled.size() * 4 + 16);
    fp += std::to_string(s.tail);
    fp += '/';
    fp += std::to_string(s.published);
    fp += '/';
    fp += std::to_string(s.drained);
    for (int i = 0; i < cap_; ++i) {
      fp += ':';
      fp += std::to_string(s.slots[static_cast<usize>(i)]);
    }
    fp += '|';
    for (u8 v : s.spilled) {
      fp += std::to_string(v);
      fp += ',';
    }
    return fp;
  }

 private:
  struct Step {
    enum Kind : u8 { kReserve, kStore, kPublish } kind;
    u8 flush;
    u8 idx;
    u8 n;
  };

  int drainer_thread() const { return static_cast<int>(steps_.size()); }

  // Same encoding as ShmLogModel: unique nonzero value per
  // (writer, flush, index), decodable for the order check.
  static u8 value_of(int writer, int flush, int idx) {
    return static_cast<u8>(1 + writer * 100 + flush * 10 + idx);
  }
  static int writer_of(u8 v) { return (v - 1) / 100; }
  static int order_key(u8 v) { return (v - 1) % 100; }

  std::vector<std::vector<Step>> steps_;
  std::vector<int> len_;
  int drainer_steps_;
  int cap_;
  int chunk_;
  SpillBug bug_;
};

}  // namespace teeperf::model
