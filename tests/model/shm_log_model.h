// Model of the v2 sharded-log publication protocol (core/log_format.cc:
// LogBatch::flush -> ProfileLog::append_batch) for the model checker:
//
//   reserve:  base = shard.tail.fetch_add(n)      (one atomic RMW per batch)
//   store i:  entries[base + i] = e_i             (plain stores, in order)
//
// Both modeled writers hit the SAME shard (the contended case; distinct
// shards are trivially independent). A writer may crash — be truncated —
// after any step, which is exactly how a batched writer leaves reserved-
// but-never-written slots: the torn-tail tombstones the analyzer accounts
// for (count_torn_tail). The terminal check replays the dump-time reader:
// scan [0, tail), committed entries are nonzero, all-zero reserved slots
// are tombstones; asserts no entry lost, none published twice, per-writer
// program order preserved, and tombstone accounting exact.
//
// Two seeded protocol bugs prove the checker can see a violation:
//   kSplitReserve     — reservation as load-then-store instead of an atomic
//                       fetch_add: two writers can claim overlapping runs
//                       (double publication / lost entries / lost tail).
//   kNoTombstoneScan  — the reader treats reserved-unwritten slots as
//                       committed entries instead of tombstones.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "tests/model/model_checker.h"

namespace teeperf::model {

enum class Bug {
  kNone,
  kSplitReserve,     // writer side: non-atomic tail reservation
  kNoTombstoneScan,  // reader side: torn slots recovered as entries
};

struct WriterProgram {
  std::vector<int> batches;  // one flush per element; element = batch size
  int crash_after = -1;      // execute only this many steps; -1 = all
};

class ShmLogModel {
 public:
  static constexpr int kCapacity = 16;
  static constexpr int kMaxWriters = 2;

  struct WriterState {
    u8 pc = 0;      // next step index
    u8 base = 0;    // slot run claimed by the current flush
    u8 loaded = 0;  // kSplitReserve: the stale tail read by the load half
  };
  struct State {
    std::array<u8, kCapacity> slots{};  // 0 = never written
    u8 tail = 0;
    std::array<WriterState, kMaxWriters> w{};
  };

  ShmLogModel(std::vector<WriterProgram> writers, Bug bug = Bug::kNone)
      : bug_(bug) {
    int total = 0;
    for (const WriterProgram& p : writers) {
      std::vector<Step> steps;
      for (usize f = 0; f < p.batches.size(); ++f) {
        int n = p.batches[f];
        total += n;
        if (bug_ == Bug::kSplitReserve) {
          steps.push_back({Step::kReserveLoad, static_cast<u8>(f), 0,
                           static_cast<u8>(n)});
          steps.push_back({Step::kReserveStore, static_cast<u8>(f), 0,
                           static_cast<u8>(n)});
        } else {
          steps.push_back(
              {Step::kReserve, static_cast<u8>(f), 0, static_cast<u8>(n)});
        }
        for (int i = 0; i < n; ++i) {
          steps.push_back({Step::kStore, static_cast<u8>(f),
                           static_cast<u8>(i), static_cast<u8>(n)});
        }
      }
      int len = static_cast<int>(steps.size());
      if (p.crash_after >= 0 && p.crash_after < len) len = p.crash_after;
      steps_.push_back(std::move(steps));
      len_.push_back(len);
    }
    // The model has no drop path: configurations must fit the shard.
    if (total > kCapacity) len_.assign(len_.size(), 0);
  }

  State initial() const { return State{}; }
  int num_threads() const { return static_cast<int>(steps_.size()); }

  bool enabled(const State& s, int t) const {
    return s.w[t].pc < len_[static_cast<usize>(t)];
  }

  Action next_action(const State& s, int t) const {
    const Step& st = steps_[static_cast<usize>(t)][s.w[t].pc];
    switch (st.kind) {
      case Step::kReserve:      return {0, true};
      case Step::kReserveLoad:  return {0, false};
      case Step::kReserveStore: return {0, true};
      case Step::kStore:        return {1 + s.w[t].base + st.idx, true};
    }
    return {0, false};
  }

  void step(State* s, int t) const {
    WriterState& w = s->w[t];
    const Step& st = steps_[static_cast<usize>(t)][w.pc];
    switch (st.kind) {
      case Step::kReserve:
        w.base = s->tail;
        s->tail = static_cast<u8>(s->tail + st.n);
        break;
      case Step::kReserveLoad:
        w.loaded = s->tail;
        break;
      case Step::kReserveStore:
        w.base = w.loaded;
        s->tail = static_cast<u8>(w.loaded + st.n);
        break;
      case Step::kStore:
        s->slots[w.base + st.idx] = value_of(t, st.flush, st.idx);
        break;
    }
    ++w.pc;
  }

  // Dump-time reader + invariants. Returns "" when all hold.
  std::string check_terminal(const State& s) const {
    // What the programs committed / reserved, schedule-independently.
    int reserved = 0;
    std::vector<u8> committed;
    for (int t = 0; t < num_threads(); ++t) {
      for (int i = 0; i < len_[static_cast<usize>(t)]; ++i) {
        const Step& st = steps_[static_cast<usize>(t)][static_cast<usize>(i)];
        if (st.kind == Step::kReserve || st.kind == Step::kReserveStore) {
          reserved += st.n;
        } else if (st.kind == Step::kStore) {
          committed.push_back(value_of(t, st.flush, st.idx));
        }
      }
    }
    if (s.tail != reserved) {
      return "shard tail " + std::to_string(s.tail) + " != slots reserved " +
             std::to_string(reserved);
    }
    // The reader: committed entries and tombstones in [0, tail).
    std::vector<u8> recovered;
    int tombstones = 0;
    for (int i = 0; i < s.tail && i < kCapacity; ++i) {
      if (s.slots[static_cast<usize>(i)] == 0 && bug_ != Bug::kNoTombstoneScan) {
        ++tombstones;  // reserved, never written: a torn-tail tombstone
      } else {
        recovered.push_back(s.slots[static_cast<usize>(i)]);
      }
    }
    // Every recovered entry is a committed one, exactly once (no double
    // publication, no garbage); every committed one is recovered (no loss).
    std::vector<u8> pool = committed;
    for (u8 v : recovered) {
      bool found = false;
      for (u8& p : pool) {
        if (p == v) {
          p = 0xff;  // consumed
          found = true;
          break;
        }
      }
      if (!found) {
        return "recovered entry " + std::to_string(v) +
               " was never committed (double publication or torn slot "
               "recovered as data)";
      }
    }
    for (u8 p : pool) {
      if (p != 0xff) {
        return "committed entry " + std::to_string(p) + " lost";
      }
    }
    if (tombstones != reserved - static_cast<int>(committed.size())) {
      return "tombstone count " + std::to_string(tombstones) +
             " != reserved-but-unwritten " +
             std::to_string(reserved - static_cast<int>(committed.size()));
    }
    // Per-writer order: a writer's entries appear in program order along
    // the slot array (all the analyzer needs for reconstruction).
    for (int t = 0; t < num_threads(); ++t) {
      int last = -1;
      for (u8 v : recovered) {
        if (writer_of(v) != t) continue;
        int key = order_key(v);
        if (key <= last) {
          return "writer " + std::to_string(t) +
                 " entries out of program order";
        }
        last = key;
      }
    }
    return "";
  }

  std::string fingerprint(const State& s) const {
    std::string fp;
    fp.reserve(kCapacity * 4 + 4);
    fp += std::to_string(s.tail);
    for (u8 v : s.slots) {
      fp += ':';
      fp += std::to_string(v);
    }
    return fp;
  }

  // Reserved-but-never-stored slots this configuration must produce (crash
  // truncation), so tests can assert the tombstone path is actually
  // exercised. Meaningful for the correct protocol only.
  int expected_tombstones() const {
    int reserved = 0, stores = 0;
    for (usize t = 0; t < steps_.size(); ++t) {
      for (int i = 0; i < len_[t]; ++i) {
        const Step& st = steps_[t][static_cast<usize>(i)];
        if (st.kind == Step::kReserve) reserved += st.n;
        if (st.kind == Step::kStore) ++stores;
      }
    }
    return reserved - stores;
  }

 private:
  struct Step {
    enum Kind : u8 { kReserve, kReserveLoad, kReserveStore, kStore } kind;
    u8 flush;
    u8 idx;
    u8 n;
  };

  // Unique nonzero value per (writer, flush, index); decodable for the
  // order check. Fits u8 for 2 writers x <=4 flushes x batch <=9.
  static u8 value_of(int writer, int flush, int idx) {
    return static_cast<u8>(1 + writer * 100 + flush * 10 + idx);
  }
  static int writer_of(u8 v) { return (v - 1) / 100; }
  static int order_key(u8 v) { return (v - 1) % 100; }

  std::vector<std::vector<Step>> steps_;
  std::vector<int> len_;
  Bug bug_;
};

}  // namespace teeperf::model
