// An exhaustive-interleaving model checker for small lock-free protocols
// (DESIGN.md §9). Bounded DFS over every schedule of the model's atomic
// steps under sequential-consistency semantics, with an optional DPOR-style
// sleep-set reduction (CDSChecker / Godefroid: after exploring thread t
// from a state, t is put to sleep for the sibling branches and woken only
// by a dependent action — schedules that differ solely by commuting
// independent steps are explored once).
//
// Deliberately deterministic: no wall clock, no randomness, no real
// threads. Thread choice order is ascending thread index, so two runs over
// the same model produce identical statistics and identical first
// violations. The reduction is sound for terminal-state properties: every
// Mazurkiewicz trace (and therefore every reachable terminal state) is
// still visited — test_model.cc cross-checks this against the unreduced
// explorer on small configurations.
//
// A model M provides:
//   struct State;                          // copyable value type
//   int num_threads() const;
//   bool enabled(const State&, int t) const;       // t has a next step
//   Action next_action(const State&, int t) const; // shared var it touches
//   void step(State*, int t) const;                // run t's next step
//   std::string check_terminal(const State&) const;  // "" = invariants hold
//   std::string fingerprint(const State&) const;     // canonical encoding
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/types.h"

namespace teeperf::model {

// One atomic step's footprint on shared memory. Two steps commute unless
// they touch the same variable and at least one writes it.
struct Action {
  int var = 0;
  bool write = false;
};

inline bool dependent(const Action& a, const Action& b) {
  return a.var == b.var && (a.write || b.write);
}

struct CheckResult {
  bool ok = true;
  std::string violation;            // first failing invariant, "" if ok
  std::vector<int> violating_trace; // schedule (thread ids) that failed
  u64 interleavings = 0;            // complete schedules executed
  u64 states = 0;                   // explore() invocations
  u64 pruned = 0;                   // branches cut by the sleep sets
  std::set<std::string> terminals;  // distinct terminal-state fingerprints
};

template <typename M>
class Checker {
 public:
  // `reduce` false runs the plain exhaustive DFS (the oracle the reduced
  // run is validated against in tests).
  explicit Checker(const M& model, bool reduce = true)
      : model_(model), reduce_(reduce) {}

  CheckResult run() {
    result_ = CheckResult{};
    trace_.clear();
    explore(model_.initial(), 0u);
    return result_;
  }

 private:
  using State = typename M::State;

  void explore(const State& s, u32 sleep) {
    ++result_.states;
    u32 enabled = 0;
    for (int t = 0; t < model_.num_threads(); ++t) {
      if (model_.enabled(s, t)) enabled |= 1u << t;
    }
    if (enabled == 0) {
      ++result_.interleavings;
      result_.terminals.insert(model_.fingerprint(s));
      if (result_.ok) {
        std::string err = model_.check_terminal(s);
        if (!err.empty()) {
          result_.ok = false;
          result_.violation = err;
          result_.violating_trace = trace_;
        }
      }
      return;
    }
    u32 runnable = enabled & ~sleep;
    if (runnable == 0) {
      // Every enabled thread is asleep: any completion of this schedule is
      // a reordering of one already explored elsewhere.
      ++result_.pruned;
      return;
    }
    u32 done = 0;  // threads already explored from this state
    for (int t = 0; t < model_.num_threads(); ++t) {
      if (!(runnable >> t & 1)) continue;
      Action action = model_.next_action(s, t);
      State child = s;
      model_.step(&child, t);
      u32 child_sleep = 0;
      if (reduce_) {
        for (int u = 0; u < model_.num_threads(); ++u) {
          if (u == t || !((sleep | done) >> u & 1)) continue;
          if (model_.enabled(s, u) &&
              !dependent(model_.next_action(s, u), action)) {
            child_sleep |= 1u << u;
          }
        }
      }
      trace_.push_back(t);
      explore(child, child_sleep);
      trace_.pop_back();
      done |= 1u << t;
    }
  }

  const M& model_;
  bool reduce_;
  CheckResult result_;
  std::vector<int> trace_;
};

}  // namespace teeperf::model
