// Streaming spill drainer (src/drain/, DESIGN.md §10): live drain while
// writers run, chunked persistence with CRC framing, crash/resume of the
// drainer, loader stitching (including the overlap a drainer crash between
// persist and cursor-advance leaves), and the dead-drainer force-advance
// overflow path. The acceptance property from the ISSUE rides here: a spill
// session pushing many times the shm capacity must analyze with zero drops
// and method stats bit-identical to an unbounded in-memory run.
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer/mprof.h"
#include "analyzer/profile.h"
#include "analyzer/stream.h"
#include "common/fileutil.h"
#include "core/log_format.h"
#include "drain/chunk_format.h"
#include "drain/drainer.h"
#include "faultsim/fault.h"

namespace teeperf {
namespace {

using analyzer::MethodStats;
using analyzer::Profile;

constexpr int kWriters = 4;
constexpr u64 kReps = 1000;  // 4 entries per rep
constexpr u64 kTotalEntries = kWriters * kReps * 4;
constexpr u64 kSpillCapacity = 2048;  // kTotalEntries is ~8x this
constexpr u32 kShards = 2;

// Tests that must not hit the force-advance drop path (a starved drainer on
// a loaded CI machine would otherwise flake them) raise the writers' space
// wait budget to effectively-infinite for their scope.
struct PatientWriters {
  PatientWriters() { ProfileLog::set_spill_wait_spins(~0ull); }
  ~PatientWriters() { ProfileLog::set_spill_wait_spins(u64{1} << 27); }
};

u64 resident_bytes() {
  auto statm = read_file("/proc/self/statm");
  if (!statm) return 0;
  unsigned long long total = 0, resident = 0;
  std::sscanf(statm->c_str(), "%llu %llu", &total, &resident);
  return static_cast<u64>(resident) * static_cast<u64>(sysconf(_SC_PAGESIZE));
}

std::string tmp_prefix(const char* name) {
  return testing::TempDir() + "teeperf_drain_" + name + "." +
         std::to_string(getpid());
}

void remove_session(const std::string& prefix) {
  std::remove((prefix + ".log").c_str());
  for (u32 seq = 0;; ++seq) {
    std::string p = drain::chunk_path(prefix, seq);
    if (!file_exists(p)) break;
    std::remove(p.c_str());
  }
}

// Deterministic nested-call workload: per-thread synthetic counters, so two
// runs (spill and unbounded) commit identical per-thread streams.
void run_workload(ProfileLog& log) {
  std::vector<std::thread> ws;
  ws.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    ws.emplace_back([&log, t] {
      LogBatch batch;
      const u64 tid = 100 + static_cast<u64>(t);
      const u64 base = 0x1000ull * static_cast<u64>(t + 1);
      u64 c = 1;
      for (u64 i = 0; i < kReps; ++i) {
        batch.record(log, EventKind::kCall, base, tid, c++);
        batch.record(log, EventKind::kCall, base + 1, tid, c++);
        batch.record(log, EventKind::kReturn, base + 1, tid, c++);
        batch.record(log, EventKind::kReturn, base, tid, c++);
      }
      batch.flush(log);
    });
  }
  for (auto& th : ws) th.join();
}

struct SpillLog {
  std::vector<u8> buf;
  ProfileLog log;
  explicit SpillLog(u64 capacity = kSpillCapacity, u32 shards = kShards) {
    buf.resize(ProfileLog::bytes_for(capacity, shards));
    EXPECT_TRUE(log.init(buf.data(), buf.size(), /*pid=*/1,
                         log_flags::kActive | log_flags::kMultithread |
                             log_flags::kSpillDrain,
                         shards));
  }
};

// The unbounded reference: same workload, same shard layout, no spill.
Profile reference_profile() {
  std::vector<u8> buf(ProfileLog::bytes_for(kTotalEntries * 2, kShards));
  ProfileLog log;
  EXPECT_TRUE(log.init(buf.data(), buf.size(), 1,
                       log_flags::kActive | log_flags::kMultithread, kShards));
  run_workload(log);
  EXPECT_EQ(log.size(), kTotalEntries);
  return Profile::from_log(log, {});
}

void expect_profiles_identical(const Profile& a, const Profile& b) {
  EXPECT_EQ(a.recon_stats().entries, b.recon_stats().entries);
  std::vector<MethodStats> sa = a.method_stats();
  std::vector<MethodStats> sb = b.method_stats();
  ASSERT_EQ(sa.size(), sb.size());
  for (usize i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].method, sb[i].method) << i;
    EXPECT_EQ(sa[i].count, sb[i].count) << i;
    EXPECT_EQ(sa[i].inclusive_total, sb[i].inclusive_total) << i;
    EXPECT_EQ(sa[i].exclusive_total, sb[i].exclusive_total) << i;
    EXPECT_EQ(sa[i].min_inclusive, sb[i].min_inclusive) << i;
    EXPECT_EQ(sa[i].max_inclusive, sb[i].max_inclusive) << i;
  }
  EXPECT_EQ(a.folded_stacks(), b.folded_stacks());
}

TEST(Drain, SpillSessionMatchesUnboundedRunExactly) {
  PatientWriters patient;
  std::string prefix = tmp_prefix("roundtrip");
  remove_session(prefix);
  SpillLog s;
  drain::DrainerOptions dopts;
  dopts.prefix = prefix;
  dopts.chunk_entries = 384;
  dopts.poll_interval_us = 200;
  drain::Drainer drainer(&s.log, dopts);
  ASSERT_TRUE(drainer.start());

  run_workload(s.log);
  ASSERT_TRUE(drainer.final_drain());

  EXPECT_EQ(s.log.dropped(), 0u);
  drain::Drainer::Stats st = drainer.stats();
  EXPECT_EQ(st.drained_entries, kTotalEntries);  // all flushed => all drained
  EXPECT_EQ(st.lag_entries, 0u);
  EXPECT_GT(st.chunks, 4u);  // genuinely chunked, not one giant file
  EXPECT_GT(st.spilled_bytes, kTotalEntries * sizeof(LogEntry));
  EXPECT_EQ(s.log.size(), 0u);  // no unpublished residue

  ASSERT_TRUE(write_file(prefix + ".log", s.log.serialize_compact()));
  auto spilled = Profile::load(prefix);  // auto-detects .seg.0000
  ASSERT_TRUE(spilled.has_value());
  EXPECT_EQ(spilled->recon_stats().entries, kTotalEntries);
  EXPECT_EQ(spilled->recon_stats().tombstones, 0u);
  expect_profiles_identical(*spilled, reference_profile());

  // The second half of the acceptance property: the streaming analyzer over
  // the same ≥8×-capacity session derives the byte-identical aggregate
  // without materializing it — its RSS stays bounded while it runs.
  u64 rss_before = resident_bytes();
  std::string err;
  auto streamed = analyzer::StreamAnalyzer::analyze(prefix, &err);
  u64 rss_after = resident_bytes();
  ASSERT_TRUE(streamed.has_value()) << err;
  EXPECT_EQ(streamed->stats.entries, kTotalEntries);
  EXPECT_EQ(streamed->save(),
            analyzer::MergeableProfile::from_profile(*spilled).save());
  ASSERT_GT(rss_before, 0u);
  EXPECT_LT(rss_after, rss_before + (32ull << 20))
      << "streaming analysis grew RSS by " << (rss_after - rss_before);
  remove_session(prefix);
}

TEST(Drain, LoadsFromChunksAloneWithoutResidueDump) {
  // A session killed before dump time: chunks on disk, no .log. Everything
  // already drained must still analyze.
  PatientWriters patient;
  std::string prefix = tmp_prefix("nolog");
  remove_session(prefix);
  SpillLog s;
  drain::DrainerOptions dopts;
  dopts.prefix = prefix;
  dopts.chunk_entries = 512;
  drain::Drainer drainer(&s.log, dopts);
  ASSERT_TRUE(drainer.start());
  run_workload(s.log);
  ASSERT_TRUE(drainer.final_drain());

  auto p = Profile::load_spill(prefix);  // no .log written
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->recon_stats().entries, kTotalEntries);
  remove_session(prefix);
}

// Supervises like teeperf_record: restart the drainer whenever it dies.
// Returns the number of restarts performed.
int run_supervised(ProfileLog& log, drain::Drainer& drainer) {
  std::atomic<bool> done{false};
  std::thread workload([&] {
    run_workload(log);
    done.store(true, std::memory_order_release);
  });
  int restarts = 0;
  while (!done.load(std::memory_order_acquire)) {
    if (drainer.dead()) {
      ++restarts;
      EXPECT_TRUE(drainer.restart());
    }
    usleep(500);
  }
  workload.join();
  if (drainer.dead()) {
    ++restarts;
    EXPECT_TRUE(drainer.restart());
  }
  return restarts;
}

TEST(Drain, DrainerDeathAndRestartLosesNothing) {
  PatientWriters patient;
  std::string prefix = tmp_prefix("die");
  remove_session(prefix);
  fault::ScopedFault die("drain.die:nth=3");
  SpillLog s;
  drain::DrainerOptions dopts;
  dopts.prefix = prefix;
  dopts.chunk_entries = 256;
  dopts.poll_interval_us = 100;
  drain::Drainer drainer(&s.log, dopts);
  ASSERT_TRUE(drainer.start());

  int restarts = run_supervised(s.log, drainer);
  ASSERT_TRUE(drainer.final_drain());
  EXPECT_GE(restarts, 1);  // the armed death actually happened

  EXPECT_EQ(s.log.dropped(), 0u);
  EXPECT_EQ(drainer.stats().drained_entries, kTotalEntries);
  ASSERT_TRUE(write_file(prefix + ".log", s.log.serialize_compact()));
  auto p = Profile::load(prefix);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->recon_stats().entries, kTotalEntries);
  EXPECT_EQ(p->recon_stats().tombstones, 0u);
  expect_profiles_identical(*p, reference_profile());
  remove_session(prefix);
}

TEST(Drain, TornChunkIsRewrittenOnResume) {
  // The drainer dies mid-write (drain.chunk.torn): half a chunk hits disk
  // and the cursors stay put. The restarted drainer must adopt the torn
  // chunk's sequence number, rewrite it whole, and lose nothing.
  PatientWriters patient;
  std::string prefix = tmp_prefix("torn");
  remove_session(prefix);
  fault::ScopedFault torn("drain.chunk.torn:nth=2");
  SpillLog s;
  drain::DrainerOptions dopts;
  dopts.prefix = prefix;
  dopts.chunk_entries = 256;
  dopts.poll_interval_us = 100;
  drain::Drainer drainer(&s.log, dopts);
  ASSERT_TRUE(drainer.start());

  int restarts = run_supervised(s.log, drainer);
  ASSERT_TRUE(drainer.final_drain());
  EXPECT_GE(restarts, 1);

  // Every chunk on disk parses — the torn one was overwritten, not skipped.
  for (u32 seq = 0;; ++seq) {
    auto raw = read_file(drain::chunk_path(prefix, seq));
    if (!raw) break;
    std::string err;
    u32 got = 0;
    std::string_view payload;
    EXPECT_TRUE(drain::parse_chunk(*raw, &got, &payload, &err))
        << "chunk " << seq << ": " << err;
    EXPECT_EQ(got, seq);
  }
  ASSERT_TRUE(write_file(prefix + ".log", s.log.serialize_compact()));
  auto p = Profile::load(prefix);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->recon_stats().entries, kTotalEntries);
  remove_session(prefix);
}

TEST(Drain, LoaderSkipsOverlapFromCrashBetweenPersistAndAdvance) {
  // The one crash window the chunk CRC cannot cover: the chunk is fully
  // persisted but the drainer dies before advancing `drained`. The same
  // window then reappears in the residue dump; the absolute start cursors
  // must deduplicate it to exactly-once.
  std::string prefix = tmp_prefix("overlap");
  remove_session(prefix);
  SpillLog s(/*capacity=*/1024, /*shards=*/kShards);
  LogBatch batch;
  for (u64 i = 0; i < 300; ++i) {
    batch.record(s.log, i % 2 ? EventKind::kReturn : EventKind::kCall, 0x7000,
                 /*tid=*/5, i + 1);
  }
  batch.flush(s.log);

  // Persist everything published as chunk 0 — without zeroing or advancing
  // the cursors, exactly the state a crash at that point leaves behind.
  std::vector<drain::ShardWindow> windows(s.log.shard_count());
  for (u32 sh = 0; sh < s.log.shard_count(); ++sh) {
    windows[sh].start = 0;
    s.log.shard_snapshot(sh, &windows[sh].entries);
  }
  ASSERT_TRUE(write_file(drain::chunk_path(prefix, 0),
                         drain::serialize_chunk(*s.log.header(), windows, 0)));
  // The residue dump re-covers the same window (drained never moved).
  ASSERT_TRUE(write_file(prefix + ".log", s.log.serialize_compact()));

  auto p = Profile::load(prefix);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->recon_stats().entries, 300u);  // once, not twice
  remove_session(prefix);
}

TEST(Drain, LoaderToleratesTornTrailingChunkRejectsBadMiddle) {
  PatientWriters patient;
  std::string prefix = tmp_prefix("loader");
  remove_session(prefix);
  SpillLog s;
  drain::DrainerOptions dopts;
  dopts.prefix = prefix;
  dopts.chunk_entries = 256;
  drain::Drainer drainer(&s.log, dopts);
  ASSERT_TRUE(drainer.start());
  run_workload(s.log);
  ASSERT_TRUE(drainer.final_drain());
  ASSERT_TRUE(write_file(prefix + ".log", s.log.serialize_compact()));
  u64 chunks = drainer.stats().chunks;
  ASSERT_GE(chunks, 3u);

  // Truncate the last chunk: its window is genuinely gone (it was drained),
  // but the load must degrade to the surviving prefix, not fail.
  std::string last_path = drain::chunk_path(prefix, static_cast<u32>(chunks - 1));
  auto last_raw = read_file(last_path);
  ASSERT_TRUE(last_raw.has_value());
  std::string_view payload;
  ASSERT_TRUE(drain::parse_chunk(*last_raw, nullptr, &payload, nullptr));
  auto last_profile = Profile::load_bytes(payload);
  ASSERT_TRUE(last_profile.has_value());
  u64 last_entries = last_profile->recon_stats().entries;
  ASSERT_TRUE(write_file(last_path, std::string_view(last_raw->data(),
                                                     last_raw->size() / 2)));
  auto tolerant = Profile::load(prefix);
  ASSERT_TRUE(tolerant.has_value());
  EXPECT_EQ(tolerant->recon_stats().entries, kTotalEntries - last_entries);

  // A corrupt chunk *followed by good ones* cannot come from the protocol:
  // refuse to analyze rather than silently drop the middle of the session.
  ASSERT_TRUE(write_file(last_path, *last_raw));  // restore the tail
  std::string mid_path = drain::chunk_path(prefix, 1);
  auto mid_raw = read_file(mid_path);
  ASSERT_TRUE(mid_raw.has_value());
  (*mid_raw)[mid_raw->size() / 2] ^= 0x40;
  ASSERT_TRUE(write_file(mid_path, *mid_raw));
  EXPECT_FALSE(Profile::load(prefix).has_value());
  remove_session(prefix);
}

TEST(Drain, DeadDrainerForceAdvanceKeepsNewestAndCountsDrops) {
  // No drainer at all and a tiny spin budget: the space wait gives up and
  // force-advances the drain cursor, discarding the oldest undrained
  // entries and counting every one of them as dropped — writers never
  // deadlock on a dead drainer.
  ProfileLog::set_spill_wait_spins(1000);
  const u64 cap = 256, total = 1024;
  SpillLog s(cap, /*shards=*/1);
  LogBatch batch;
  for (u64 i = 0; i < total; ++i) {
    batch.record(s.log, i % 2 ? EventKind::kReturn : EventKind::kCall, 0x9000,
                 /*tid=*/7, i + 1);
  }
  batch.flush(s.log);
  ProfileLog::set_spill_wait_spins(u64{1} << 27);

  EXPECT_EQ(s.log.attempted(), total);
  EXPECT_EQ(s.log.dropped(), total - cap);  // exact keep-newest accounting
  EXPECT_EQ(s.log.size(), cap);
  auto p = Profile::load_bytes(s.log.serialize_compact());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->recon_stats().entries, cap);
  EXPECT_EQ(p->recon_stats().tombstones, 0u);
  // What survives is the newest window: the highest counters.
  const std::vector<analyzer::Invocation>& inv = p->invocations();
  ASSERT_FALSE(inv.empty());
}

TEST(Drain, ChunkFrameRejectsCorruption) {
  std::vector<drain::ShardWindow> windows(1);
  windows[0].start = 17;
  LogEntry e{};
  e.kind_and_counter = LogEntry::pack(EventKind::kCall, 42);
  e.addr = 0x1234;
  e.tid = 9;
  windows[0].entries.push_back(e);
  LogHeader session{};
  session.magic = kLogMagic;
  session.version = kLogVersionSharded;
  std::string chunk = drain::serialize_chunk(session, windows, 7);

  u32 seq = 0;
  std::string_view payload;
  std::string err;
  ASSERT_TRUE(drain::parse_chunk(chunk, &seq, &payload, &err)) << err;
  EXPECT_EQ(seq, 7u);
  auto p = Profile::load_bytes(payload);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->recon_stats().entries, 1u);

  // Too short for a frame.
  EXPECT_FALSE(drain::parse_chunk(chunk.substr(0, 16), &seq, &payload, &err));
  // Bad magic.
  std::string bad = chunk;
  bad[0] ^= 0xff;
  EXPECT_FALSE(drain::parse_chunk(bad, &seq, &payload, &err));
  // Truncated payload.
  EXPECT_FALSE(
      drain::parse_chunk(chunk.substr(0, chunk.size() - 8), &seq, &payload, &err));
  // One flipped payload bit.
  bad = chunk;
  bad[sizeof(drain::ChunkFrame) + 5] ^= 0x01;
  EXPECT_FALSE(drain::parse_chunk(bad, &seq, &payload, &err));
  // Flipped frame field (seq) caught by the header CRC.
  bad = chunk;
  bad[8] ^= 0x01;
  EXPECT_FALSE(drain::parse_chunk(bad, &seq, &payload, &err));
}

TEST(Drain, ChunkPathFormat) {
  EXPECT_EQ(drain::chunk_path("run", 0), "run.seg.0000");
  EXPECT_EQ(drain::chunk_path("run", 42), "run.seg.0042");
  EXPECT_EQ(drain::chunk_path("/a/b", 12345), "/a/b.seg.12345");
}

TEST(Drain, InitRejectsIllegalSpillCombos) {
  std::vector<u8> buf(ProfileLog::bytes_for(1024, 2));
  ProfileLog log;
  // Spill excludes ring (two incompatible reclaim policies)...
  EXPECT_FALSE(log.init(buf.data(), buf.size(), 1,
                        log_flags::kSpillDrain | log_flags::kRingBuffer, 2));
  // ...and requires the sharded layout (v1 has no publish/drain cursors).
  std::vector<u8> v1(ProfileLog::bytes_for(1024, 0));
  EXPECT_FALSE(log.init(v1.data(), v1.size(), 1, log_flags::kSpillDrain, 0));
  // The legal combination still initializes.
  EXPECT_TRUE(log.init(buf.data(), buf.size(), 1, log_flags::kSpillDrain, 2));
  EXPECT_TRUE(log.spill());
  // A drainer refuses a non-spill log.
  std::vector<u8> plain(ProfileLog::bytes_for(1024, 2));
  ProfileLog plain_log;
  ASSERT_TRUE(plain_log.init(plain.data(), plain.size(), 1, 0, 2));
  drain::Drainer d(&plain_log, {});
  EXPECT_FALSE(d.start());
}

}  // namespace
}  // namespace teeperf
