// Tests for the TEE-Perf log format (§II-B, Figure 2): layout invariants,
// lock-free append, flag atomics, overflow behaviour, and the concurrent
// reservation property (every slot written exactly once).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/log_format.h"

namespace teeperf {
namespace {

TEST(LogFormat, LayoutInvariants) {
  EXPECT_EQ(sizeof(LogEntry), 32u);
  EXPECT_EQ(sizeof(LogHeader), 128u);
  EXPECT_EQ(sizeof(LogHeader) % alignof(LogEntry), 0u);
}

TEST(LogFormat, EntryPackRoundTrip) {
  for (u64 counter : {0ull, 1ull, 123456789ull, (1ull << 62)}) {
    LogEntry e;
    e.kind_and_counter = LogEntry::pack(EventKind::kCall, counter);
    EXPECT_EQ(e.kind(), EventKind::kCall);
    EXPECT_EQ(e.counter(), counter);
    e.kind_and_counter = LogEntry::pack(EventKind::kReturn, counter);
    EXPECT_EQ(e.kind(), EventKind::kReturn);
    EXPECT_EQ(e.counter(), counter);
  }
}

class ProfileLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    buf_.resize(ProfileLog::bytes_for(64));
    ASSERT_TRUE(log_.init(buf_.data(), buf_.size(), 1234,
                          log_flags::kActive | log_flags::kRecordCalls |
                              log_flags::kRecordReturns));
  }
  std::vector<u8> buf_;
  ProfileLog log_;
};

TEST_F(ProfileLogTest, InitSetsHeader) {
  const LogHeader* h = log_.header();
  EXPECT_EQ(h->magic, kLogMagic);
  EXPECT_EQ(h->version, kLogVersion);
  EXPECT_EQ(h->pid, 1234u);
  EXPECT_EQ(h->max_entries, 64u);
  EXPECT_EQ(h->tail.load(), 0u);
  EXPECT_NE(h->profiler_anchor, 0u);
  EXPECT_TRUE(log_.active());
}

TEST_F(ProfileLogTest, InitRejectsTinyBuffer) {
  ProfileLog small;
  u8 tiny[64];
  EXPECT_FALSE(small.init(tiny, sizeof tiny, 1, 0));
  EXPECT_FALSE(small.valid());
}

TEST_F(ProfileLogTest, AppendWritesEntry) {
  ASSERT_TRUE(log_.append(EventKind::kCall, 0xabc, 7, 100));
  ASSERT_EQ(log_.size(), 1u);
  const LogEntry& e = log_.entry(0);
  EXPECT_EQ(e.kind(), EventKind::kCall);
  EXPECT_EQ(e.addr, 0xabcu);
  EXPECT_EQ(e.tid, 7u);
  EXPECT_EQ(e.counter(), 100u);
}

TEST_F(ProfileLogTest, AppendStopsAtCapacity) {
  for (u64 i = 0; i < 64; ++i) {
    EXPECT_TRUE(log_.append(EventKind::kCall, i, 0, i));
  }
  EXPECT_FALSE(log_.append(EventKind::kCall, 99, 0, 99));
  EXPECT_EQ(log_.size(), 64u);
  EXPECT_EQ(log_.dropped(), 1u);
  // Size stays clamped even though the tail keeps advancing.
  EXPECT_FALSE(log_.append(EventKind::kReturn, 100, 0, 100));
  EXPECT_EQ(log_.size(), 64u);
  EXPECT_EQ(log_.dropped(), 2u);
}

TEST_F(ProfileLogTest, FlagToggles) {
  EXPECT_TRUE(log_.active());
  log_.set_active(false);
  EXPECT_FALSE(log_.active());
  log_.set_active(true);
  EXPECT_TRUE(log_.active());

  log_.set_flags(log_flags::kMultithread, log_flags::kRecordReturns);
  EXPECT_TRUE(log_.flags() & log_flags::kMultithread);
  EXPECT_FALSE(log_.flags() & log_flags::kRecordReturns);
  EXPECT_TRUE(log_.flags() & log_flags::kRecordCalls);
}

TEST_F(ProfileLogTest, AdoptExistingLog) {
  log_.append(EventKind::kCall, 0x1, 0, 10);
  log_.append(EventKind::kReturn, 0x1, 0, 20);

  ProfileLog other;
  ASSERT_TRUE(other.adopt(buf_.data(), buf_.size()));
  EXPECT_EQ(other.size(), 2u);
  EXPECT_EQ(other.entry(1).kind(), EventKind::kReturn);
  EXPECT_EQ(other.header()->pid, 1234u);
}

TEST_F(ProfileLogTest, AdoptRejectsBadMagic) {
  log_.header()->magic = 0x1111;
  ProfileLog other;
  EXPECT_FALSE(other.adopt(buf_.data(), buf_.size()));
}

TEST_F(ProfileLogTest, AdoptRejectsBadVersion) {
  log_.header()->version = 99;
  ProfileLog other;
  EXPECT_FALSE(other.adopt(buf_.data(), buf_.size()));
}

TEST_F(ProfileLogTest, AdoptRejectsTruncatedBuffer) {
  ProfileLog other;
  // Claim more entries than the buffer holds.
  log_.header()->max_entries = 10'000;
  EXPECT_FALSE(other.adopt(buf_.data(), buf_.size()));
}

// --- ring-buffer mode ---------------------------------------------------------

TEST(RingLog, WrapsInsteadOfDropping) {
  std::vector<u8> buf(ProfileLog::bytes_for(8));
  ProfileLog log;
  ASSERT_TRUE(log.init(buf.data(), buf.size(), 1,
                       log_flags::kActive | log_flags::kRingBuffer));
  for (u64 i = 0; i < 20; ++i) {
    EXPECT_TRUE(log.append(EventKind::kCall, 100 + i, 0, i));
  }
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.size(), 8u);  // capacity-clamped view

  std::vector<LogEntry> ordered;
  log.snapshot_ordered(&ordered);
  ASSERT_EQ(ordered.size(), 8u);
  // The newest 8 entries (12..19) survive, oldest-first.
  for (u64 i = 0; i < 8; ++i) {
    EXPECT_EQ(ordered[i].addr, 100 + 12 + i);
    EXPECT_EQ(ordered[i].counter(), 12 + i);
  }
}

TEST(RingLog, SnapshotBeforeWrapIsPlainOrder) {
  std::vector<u8> buf(ProfileLog::bytes_for(8));
  ProfileLog log;
  ASSERT_TRUE(log.init(buf.data(), buf.size(), 1,
                       log_flags::kActive | log_flags::kRingBuffer));
  for (u64 i = 0; i < 5; ++i) log.append(EventKind::kCall, i, 0, i);
  std::vector<LogEntry> ordered;
  log.snapshot_ordered(&ordered);
  ASSERT_EQ(ordered.size(), 5u);
  EXPECT_EQ(ordered[0].addr, 0u);
  EXPECT_EQ(ordered[4].addr, 4u);
}

TEST(RingLog, NonRingSnapshotMatchesEntries) {
  std::vector<u8> buf(ProfileLog::bytes_for(8));
  ProfileLog log;
  ASSERT_TRUE(log.init(buf.data(), buf.size(), 1, log_flags::kActive));
  for (u64 i = 0; i < 12; ++i) log.append(EventKind::kCall, i, 0, i);
  EXPECT_EQ(log.dropped(), 4u);
  std::vector<LogEntry> ordered;
  log.snapshot_ordered(&ordered);
  EXPECT_EQ(ordered.size(), 8u);
  EXPECT_EQ(ordered[7].addr, 7u);
}

// Property: under concurrent appends, every slot 0..capacity-1 is written
// exactly once and no entry is torn (each writer uses a distinct addr).
TEST(ProfileLogConcurrency, EverySlotWrittenOnce) {
  constexpr u64 kCapacity = 32768;
  constexpr int kThreads = 8;
  std::vector<u8> buf(ProfileLog::bytes_for(kCapacity));
  ProfileLog log;
  ASSERT_TRUE(log.init(buf.data(), buf.size(), 1, log_flags::kActive));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      // Each thread writes until the log is full; addr encodes the writer
      // and a per-thread sequence number.
      u64 i = 0;
      while (log.append(EventKind::kCall, (static_cast<u64>(t) << 32) | i,
                        static_cast<u64>(t), i)) {
        ++i;
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_EQ(log.size(), kCapacity);
  // Per-writer sequence numbers must appear in order when filtered by tid
  // (per-thread ordering is the log's contract).
  u64 next_seq[kThreads] = {};
  for (u64 s = 0; s < kCapacity; ++s) {
    const LogEntry& e = log.entry(s);
    u64 writer = e.addr >> 32;
    u64 seq = e.addr & 0xffffffffull;
    ASSERT_LT(writer, static_cast<u64>(kThreads));
    EXPECT_EQ(e.tid, writer);
    EXPECT_EQ(seq, next_seq[writer]) << "slot " << s;
    ++next_seq[writer];
  }
  u64 total = 0;
  for (u64 n : next_seq) total += n;
  EXPECT_EQ(total, kCapacity);
}

}  // namespace
}  // namespace teeperf
