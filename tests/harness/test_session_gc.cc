// Stale-session reclamation after a recorder crash (TESTING.md fault
// "recorder.dump.die"): a session SIGKILLed mid-dump leaves its registry
// descriptor and named shm segments orphaned; gc_stale_sessions() must
// reclaim both once the owner pid is dead — and must keep reclaiming
// nothing for sessions whose owner is alive.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>

#include "common/fileutil.h"
#include "common/session_registry.h"
#include "core/recorder.h"
#include "faultsim/fault.h"

using namespace teeperf;

namespace {

bool shm_exists(const std::string& name) {
  int fd = shm_open(name.c_str(), O_RDONLY, 0600);
  if (fd >= 0) {
    close(fd);
    return true;
  }
  return false;
}

}  // namespace

TEST(SessionGc, CrashedRecorderOrphansAreReclaimed) {
  std::string dir = make_temp_dir("teeperf_sgc_");

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: a real recorded session that dies inside dump() before
    // anything is persisted — exactly the crash window that leaves both
    // the descriptor and the shm segments behind.
    std::string error;
    if (!fault::Registry::instance().arm_from_spec("recorder.dump.die:nth=1",
                                                   &error)) {
      _exit(3);
    }
    RecorderOptions opts;
    opts.shm_name = "auto";
    opts.session_dir = dir;
    opts.max_entries = 4096;
    auto rec = Recorder::create(opts);
    if (!rec || rec->session_name().empty()) _exit(4);
    rec->log().append(EventKind::kCall, 0x1000, 1, 10);
    rec->dump(dir + "/crashed");  // SIGKILL fires here
    _exit(5);                     // unreachable: the fault did not fire
  }

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child must die inside dump()";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The wreckage: descriptor still registered, segments still linked.
  auto stale = session_registry::list_sessions(dir);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].pid, static_cast<u64>(child));
  EXPECT_FALSE(session_registry::pid_alive(stale[0].pid));
  ASSERT_FALSE(stale[0].log_shm.empty());
  ASSERT_FALSE(stale[0].obs_shm.empty());
  EXPECT_TRUE(shm_exists(stale[0].log_shm));
  EXPECT_TRUE(shm_exists(stale[0].obs_shm));

  // Reclaim: the descriptor and both named segments go away.
  auto r = session_registry::gc_stale_sessions(dir);
  EXPECT_GE(r.descriptors, 1u);
  EXPECT_GE(r.segments, 2u);
  EXPECT_TRUE(session_registry::list_sessions(dir).empty());
  EXPECT_FALSE(shm_exists(stale[0].log_shm));
  EXPECT_FALSE(shm_exists(stale[0].obs_shm));

  // Idempotence: a second sweep finds nothing of this session's.
  auto again = session_registry::gc_stale_sessions(dir);
  EXPECT_EQ(again.descriptors, 0u);
}

TEST(SessionGc, LiveSessionSurvivesSweep) {
  std::string dir = make_temp_dir("teeperf_sgl_");
  RecorderOptions opts;
  opts.shm_name = "auto";
  opts.session_dir = dir;
  opts.max_entries = 4096;
  auto rec = Recorder::create(opts);
  ASSERT_NE(rec, nullptr);
  ASSERT_FALSE(rec->session_name().empty());

  auto r = session_registry::gc_stale_sessions(dir);
  EXPECT_EQ(r.descriptors, 0u);
  auto sessions = session_registry::list_sessions(dir);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].name, rec->session_name());
  EXPECT_TRUE(shm_exists(sessions[0].log_shm));

  // Clean destruction withdraws the descriptor without needing GC.
  rec.reset();
  EXPECT_TRUE(session_registry::list_sessions(dir).empty());
}
