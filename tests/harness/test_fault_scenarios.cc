// End-to-end fault-injection scenarios (see TESTING.md): processes die
// mid-append, dumps arrive torn or bit-flipped, counters stall or jump
// backwards, shared memory shrinks, EPC runs out — and every layer above
// must degrade exactly as designed, deterministically per seed.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <cmath>

#include "analyzer/profile.h"
#include "common/fileutil.h"
#include "common/shm.h"
#include "common/spin.h"
#include "core/profiler.h"
#include "faultsim/fault.h"
#include "obs/metric_names.h"
#include "obs/session.h"
#include "obs/watchdog.h"
#include "tee/enclave.h"
#include "tee/epc.h"

namespace teeperf {
namespace {

class FaultScenarioTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::Registry::instance().reset();
    if (runtime::attached()) runtime::detach();
    runtime::reset_thread_for_test();
  }
};

// A deterministic balanced call/return script for direct log appends.
struct ScriptEntry {
  EventKind kind;
  u64 addr;
  u64 tid;
  u64 counter;
};

std::vector<ScriptEntry> make_script() {
  std::vector<ScriptEntry> script;
  u64 c = 100;
  for (u64 rep = 0; rep < 16; ++rep) {
    u64 tid = rep % 2;
    script.push_back({EventKind::kCall, 0xA000 + rep % 3, tid, c += 7});
    script.push_back({EventKind::kCall, 0xB000, tid, c += 7});
    script.push_back({EventKind::kReturn, 0xB000, tid, c += 7});
    script.push_back({EventKind::kReturn, 0xA000 + rep % 3, tid, c += 7});
  }
  return script;
}

// --- kill mid-append --------------------------------------------------------

// A writer SIGKILLed between the tail fetch-and-add and the entry stores —
// by the production append path itself, at a seeded point — leaves exactly
// one reserved-but-empty slot. The analyzer must recover the full prefix
// and account for the tombstone. Deterministic per seed.
class KillMidAppendTest : public FaultScenarioTest,
                          public ::testing::WithParamInterface<u64> {};

TEST_P(KillMidAppendTest, AnalyzerRecoversValidPrefix) {
  const u64 seed = GetParam();
  const std::vector<ScriptEntry> script = make_script();
  // The fatal append, derived from the seed: somewhere strictly inside the
  // script so there is both a prefix to recover and a suffix that is lost.
  const u64 fatal = 2 + (seed * 17) % (script.size() - 4);

  SharedMemoryRegion shm;
  ASSERT_TRUE(shm.create_anonymous(ProfileLog::bytes_for(script.size() + 8)));
  ProfileLog log;
  ASSERT_TRUE(log.init(shm.data(), shm.size(), 1234,
                       log_flags::kActive | log_flags::kRecordCalls |
                           log_flags::kRecordReturns | log_flags::kMultithread));

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: arm the production fault point and replay the script. The
    // fetch-and-add for append `fatal` (1-based: hit `fatal`) happens, then
    // the process dies before the entry stores.
    fault::Spec s;
    s.mode = fault::Mode::kNth;
    s.n = fatal;
    fault::Registry::instance().set_seed(seed);
    fault::Registry::instance().arm("log.append.die", s);
    for (const ScriptEntry& e : script) {
      log.append(e.kind, e.addr, e.tid, e.counter);
    }
    _exit(0);  // unreachable if the fault fired
  }

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child should die at append " << fatal;
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The slot was reserved but never filled: tail == fatal, last slot zero.
  u64 tail = log.header()->tail.load(std::memory_order_acquire);
  ASSERT_EQ(tail, fatal);
  const LogEntry& torn = log.entry(fatal - 1);
  EXPECT_EQ(torn.kind_and_counter, 0u);
  EXPECT_EQ(torn.addr, 0u);
  EXPECT_EQ(log.count_torn_tail(), 1u);

  // The complete prefix is byte-identical to the script.
  for (u64 i = 0; i + 1 < fatal; ++i) {
    EXPECT_EQ(log.entry(i).addr, script[i].addr) << "entry " << i;
    EXPECT_EQ(log.entry(i).tid, script[i].tid) << "entry " << i;
    EXPECT_EQ(log.entry(i).counter(), script[i].counter) << "entry " << i;
  }

  // The analyzer consumes the prefix and reports the tombstone instead of
  // inventing a phantom invocation of method 0.
  auto profile = analyzer::Profile::from_log(log, {}, 1.0);
  EXPECT_EQ(profile.recon_stats().entries, fatal);
  EXPECT_EQ(profile.recon_stats().tombstones, 1u);

  // Reference replay: the same prefix appended by a healthy writer yields
  // an identical reconstruction.
  SharedMemoryRegion ref_shm;
  ASSERT_TRUE(ref_shm.create_anonymous(ProfileLog::bytes_for(script.size() + 8)));
  ProfileLog ref_log;
  ASSERT_TRUE(ref_log.init(ref_shm.data(), ref_shm.size(), 1234,
                           log.flags()));
  for (u64 i = 0; i + 1 < fatal; ++i) {
    ref_log.append(script[i].kind, script[i].addr, script[i].tid,
                   script[i].counter);
  }
  auto ref = analyzer::Profile::from_log(ref_log, {}, 1.0);
  ASSERT_EQ(profile.invocations().size(), ref.invocations().size());
  for (usize i = 0; i < ref.invocations().size(); ++i) {
    EXPECT_EQ(profile.invocations()[i].method, ref.invocations()[i].method);
    EXPECT_EQ(profile.invocations()[i].start, ref.invocations()[i].start);
    EXPECT_EQ(profile.invocations()[i].end, ref.invocations()[i].end);
    EXPECT_EQ(profile.invocations()[i].tid, ref.invocations()[i].tid);
  }
  EXPECT_EQ(profile.recon_stats().incomplete, ref.recon_stats().incomplete);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KillMidAppendTest, ::testing::Values(1, 2, 3));

// --- kill mid batch flush ---------------------------------------------------

// The v2 analogue: a batched writer SIGKILLed by `log.flush.die` after the
// shard-tail reservation but before any of the batch's stores. The whole
// reserved window — up to a full batch — stays zero, and the per-shard
// torn-tail scan must account for every slot of it while the other shard's
// completed flushes survive intact.
class KillMidBatchFlushTest : public FaultScenarioTest,
                              public ::testing::WithParamInterface<u64> {};

TEST_P(KillMidBatchFlushTest, PerShardTornTailAccountsWholeBatch) {
  const u64 seed = GetParam();
  // nth=1 kills the first auto-flush (tid 0's full batch, nothing stored
  // yet); nth=2 kills the second (tid 1's batch, after tid 0's survived).
  const u64 fatal_flush = 1 + (seed % 2);
  const u64 dying_tid = fatal_flush - 1;
  const std::vector<ScriptEntry> script = make_script();

  SharedMemoryRegion shm;
  ASSERT_TRUE(shm.create_anonymous(ProfileLog::bytes_for(256, 2)));
  ProfileLog log;
  ASSERT_TRUE(log.init(shm.data(), shm.size(), 1234,
                       log_flags::kActive | log_flags::kRecordCalls |
                           log_flags::kRecordReturns | log_flags::kMultithread,
                       2));
  ASSERT_EQ(log.shard_count(), 2u);

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    fault::Spec s;
    s.mode = fault::Mode::kNth;
    s.n = fatal_flush;
    fault::Registry::instance().set_seed(seed);
    fault::Registry::instance().arm("log.flush.die", s);
    // One batch per thread, as the runtime keeps them. Each tid records 32
    // events — exactly one full-batch auto-flush per tid, in tid order.
    LogBatch batches[2];
    for (const ScriptEntry& e : script) {
      batches[e.tid].record(log, e.kind, e.addr, e.tid, e.counter);
    }
    for (LogBatch& b : batches) b.flush(log);
    _exit(0);  // unreachable: flush `fatal_flush` dies mid-publication
  }

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child should die at flush " << fatal_flush;
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The dying shard reserved a whole batch and stored none of it; the other
  // shard holds exactly its completed flushes.
  const u32 dead_shard = log.shard_of(dying_tid);
  const u32 live_shard = 1 - dead_shard;
  EXPECT_EQ(log.shard(dead_shard)->tail.load(std::memory_order_acquire), 32u);
  EXPECT_EQ(log.shard_torn_tail(dead_shard), 32u);
  EXPECT_EQ(log.shard(live_shard)->tail.load(std::memory_order_acquire),
            fatal_flush == 1 ? 0u : 32u);
  EXPECT_EQ(log.shard_torn_tail(live_shard), 0u);
  EXPECT_EQ(log.count_torn_tail(), 32u);

  // The analyzer consumes the surviving shard and accounts every torn slot.
  auto profile = analyzer::Profile::from_log(log, {}, 1.0);
  EXPECT_EQ(profile.recon_stats().tombstones, 32u);

  // Reference replay of the surviving thread's events (balanced calls and
  // returns, so reconstruction is exact).
  SharedMemoryRegion ref_shm;
  ASSERT_TRUE(ref_shm.create_anonymous(ProfileLog::bytes_for(256)));
  ProfileLog ref_log;
  ASSERT_TRUE(ref_log.init(ref_shm.data(), ref_shm.size(), 1234, log.flags()));
  for (const ScriptEntry& e : script) {
    if (fatal_flush == 2 && e.tid != dying_tid) {
      ref_log.append(e.kind, e.addr, e.tid, e.counter);
    }
  }
  auto ref = analyzer::Profile::from_log(ref_log, {}, 1.0);
  ASSERT_EQ(profile.invocations().size(), ref.invocations().size());
  for (usize i = 0; i < ref.invocations().size(); ++i) {
    EXPECT_EQ(profile.invocations()[i].method, ref.invocations()[i].method);
    EXPECT_EQ(profile.invocations()[i].start, ref.invocations()[i].start);
    EXPECT_EQ(profile.invocations()[i].end, ref.invocations()[i].end);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KillMidBatchFlushTest, ::testing::Values(1, 2, 3));

// --- ring-wrap torn tail ----------------------------------------------------

// Regression for the ring-mode torn-tail scan: once a ring shard's tail has
// passed capacity, the newest entry lives at (tail - 1) % capacity, not at
// capacity - 1. The old scan indexed from the clamped tail, so after a wrap
// it walked the top of the physical segment — reporting phantom tombstones
// for a fully stored newest window and missing the real torn batch behind
// it.
class RingWrapTornTailTest : public FaultScenarioTest,
                             public ::testing::WithParamInterface<u64> {};

TEST_P(RingWrapTornTailTest, WrappedWindowScansPhysicalSlots) {
  const u64 seed = GetParam();
  constexpr u64 kCap = 64;
  constexpr u64 kTid = 7;

  SharedMemoryRegion shm;
  ASSERT_TRUE(shm.create_anonymous(ProfileLog::bytes_for(kCap, 1)));
  ProfileLog log;
  ASSERT_TRUE(log.init(shm.data(), shm.size(), 1234,
                       log_flags::kActive | log_flags::kRecordCalls |
                           log_flags::kRecordReturns |
                           log_flags::kMultithread | log_flags::kRingBuffer,
                       1));
  ASSERT_EQ(log.shard_count(), 1u);

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Flush 1 ([0, 32)) completes; flush 2 reserves [32, 64) and dies before
    // storing a single entry, leaving half the segment zero.
    fault::Spec s;
    s.mode = fault::Mode::kNth;
    s.n = 2;
    fault::Registry::instance().set_seed(seed);
    fault::Registry::instance().arm("log.flush.die", s);
    LogBatch b;
    u64 c = 100;
    for (u64 i = 0; i < kCap; ++i) {
      b.record(log, i % 2 == 0 ? EventKind::kCall : EventKind::kReturn,
               0xC000 + (i / 2) % 4, kTid, c += 3);
    }
    b.flush(log);
    _exit(0);  // unreachable: the final flush dies mid-publication
  }

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  ASSERT_EQ(log.shard(0)->tail.load(std::memory_order_acquire), kCap);

  // A surviving writer keeps recording and wraps: the next flush reserves
  // [64, 96) and publishes it over physical slots [0, 32) as two spans.
  LogBatch survivor;
  u64 c = 1000;
  for (u64 i = 0; i < 32; ++i) {
    survivor.record(log, i % 2 == 0 ? EventKind::kCall : EventKind::kReturn,
                    0xD000, kTid, c += 3);
  }
  ASSERT_TRUE(survivor.flush(log));
  ASSERT_EQ(log.shard(0)->tail.load(std::memory_order_acquire), kCap + 32);

  // The live window is [tail - cap, tail) = [32, 96): the torn flush's 32
  // zero slots followed by the wrapped survivor. The default window covers
  // all of it...
  EXPECT_EQ(log.shard_torn_tail(0), 32u);
  EXPECT_EQ(log.count_torn_tail(~0ull), 32u);
  // ...while the newest 32 entries — physical slots [0, 32) after the wrap
  // — are fully stored. The pre-fix clamped scan walked slots [32, 64) here
  // and reported 32 phantom tombstones.
  EXPECT_EQ(log.shard_torn_tail(0, 32), 0u);

  // The wrapped span really landed at the low physical slots: the ordered
  // window starts with the torn zeros and ends with the survivor's batch.
  std::vector<LogEntry> window;
  log.shard_snapshot(0, &window);
  ASSERT_EQ(window.size(), kCap);
  for (u64 i = 0; i < 32; ++i) {
    EXPECT_EQ(window[i].kind_and_counter, 0u) << "slot " << i;
    EXPECT_EQ(window[i + 32].addr, 0xD000u) << "slot " << (i + 32);
  }

  // The analyzer sees exactly the torn batch as tombstones.
  auto profile = analyzer::Profile::from_log(log, {}, 1.0);
  EXPECT_EQ(profile.recon_stats().tombstones, 32u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingWrapTornTailTest, ::testing::Values(1, 2, 3));

// --- cross-process drop visibility ------------------------------------------

// The v1 drop counter lives in the shared header, not in a process-local
// member: an app process overrunning a bounded log must surface its drops to
// the recorder process attached to the same region — and from there to the
// watchdog's log.dropped gauge.
TEST_F(FaultScenarioTest, DroppedCountIsVisibleAcrossProcesses) {
  constexpr u64 kCap = 8;
  constexpr u64 kAttempts = 20;
  SharedMemoryRegion shm;
  ASSERT_TRUE(shm.create_anonymous(ProfileLog::bytes_for(kCap)));
  ProfileLog log;
  ASSERT_TRUE(log.init(shm.data(), shm.size(), 1234,
                       log_flags::kActive | log_flags::kRecordCalls));
  ASSERT_EQ(log.dropped(), 0u);

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // App side: overruns the bounded log by 12 appends, then exits cleanly.
    for (u64 i = 0; i < kAttempts; ++i) {
      log.append(EventKind::kCall, 0xA000, 0, 100 + i);
    }
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  // Recorder side: the same mapping reads the header word the child bumped.
  // Before the counter moved into shared memory this read 0 here.
  EXPECT_EQ(log.dropped(), kAttempts - kCap);
  EXPECT_EQ(log.header()->dropped.load(std::memory_order_relaxed),
            kAttempts - kCap);

  // And the watchdog publishes it: one observe tick turns the sample into
  // the log.dropped gauge the exporters scrape.
  obs::TelemetryOptions topts;  // no shm_name → anonymous region
  auto t = obs::SelfTelemetry::create(topts);
  ASSERT_NE(t, nullptr);
  obs::WatchdogOptions wopts;
  wopts.interval_ms = 1;
  obs::Watchdog wd(&t->registry(), &t->journal(),
                   [n = u64{0}]() mutable { return ++n; }, "test", wopts);
  wd.watch_log([&] {
    obs::LogSample s;
    s.tail = log.size();
    s.capacity = kCap;
    s.active = true;
    s.dropped = log.dropped();
    return s;
  });
  wd.start();
  for (int i = 0; i < 2000 && wd.ticks() < 2; ++i) usleep(1000);
  wd.stop();
  EXPECT_EQ(t->registry().gauge(obs::metric_names::kLogDropped).value(),
            kAttempts - kCap);
}

// --- shard allocation failure ----------------------------------------------

TEST_F(FaultScenarioTest, ShardAllocFailMakesShardedInitFail) {
  std::vector<u8> buf(ProfileLog::bytes_for(1024, 4));
  {
    // The v2 directory carve-out fails: init reports it, nothing is adopted.
    fault::ScopedFault f("log.shard.alloc.fail:nth=1");
    ProfileLog log;
    EXPECT_FALSE(log.init(buf.data(), buf.size(), 42,
                          log_flags::kActive | log_flags::kMultithread, 4));
  }
  {
    // v1 never allocates a directory, so the same armed fault is a no-op.
    fault::ScopedFault f("log.shard.alloc.fail:nth=1");
    ProfileLog log;
    EXPECT_TRUE(log.init(buf.data(), buf.size(), 42,
                         log_flags::kActive | log_flags::kMultithread));
  }
  // And the recorder surfaces the failure as a failed create.
  fault::ScopedFault f("log.shard.alloc.fail:nth=1");
  RecorderOptions opts;
  opts.counter_mode = CounterMode::kSteadyClock;
  opts.shards = 4;
  EXPECT_EQ(Recorder::create(opts), nullptr);
}

// --- torn / bit-flipped dumps ----------------------------------------------

TEST_F(FaultScenarioTest, TornDumpLoadsPrefixOrRejectsCleanly) {
  std::string dir = make_temp_dir("teeperf_torn_");
  RecorderOptions opts;
  opts.counter_mode = CounterMode::kSteadyClock;
  auto rec = Recorder::create(opts);
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->attach());
  for (int i = 0; i < 10; ++i) {
    TEEPERF_SCOPE("torn::outer");
    TEEPERF_SCOPE("torn::inner");
  }
  rec->detach();

  // An intact dump for reference.
  ASSERT_TRUE(rec->dump(dir + "/ok"));
  auto intact = analyzer::Profile::load(dir + "/ok");
  ASSERT_TRUE(intact.has_value());
  ASSERT_EQ(intact->invocations().size(), 20u);

  // Torn dumps across several seeds: the analyzer loads a strict prefix or
  // rejects the file — never crashes, never fabricates invocations.
  for (u64 seed = 1; seed <= 5; ++seed) {
    fault::Registry::instance().reset();
    fault::Registry::instance().set_seed(seed);
    fault::Registry::instance().arm_from_spec("dump.torn:nth=1");
    std::string prefix = dir + "/torn" + std::to_string(seed);
    rec->dump(prefix);  // may report failure; the file may be partial
    fault::Registry::instance().reset();
    auto loaded = analyzer::Profile::load(prefix);
    if (loaded) {
      EXPECT_LE(loaded->invocations().size(), intact->invocations().size());
      EXPECT_LE(loaded->recon_stats().entries, intact->recon_stats().entries);
      loaded->method_stats();
      loaded->folded_stacks();
    }
  }
  remove_tree(dir);
}

TEST_F(FaultScenarioTest, BitflippedDumpNeverCrashesAnalyzer) {
  std::string dir = make_temp_dir("teeperf_flip_");
  RecorderOptions opts;
  opts.counter_mode = CounterMode::kSteadyClock;
  auto rec = Recorder::create(opts);
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->attach());
  for (int i = 0; i < 8; ++i) {
    TEEPERF_SCOPE("flip::work");
  }
  rec->detach();
  ASSERT_TRUE(rec->dump(dir + "/base"));
  auto raw = read_file(dir + "/base.log");
  ASSERT_TRUE(raw.has_value());

  for (u64 seed = 1; seed <= 32; ++seed) {
    fault::Registry::instance().reset();
    fault::Registry::instance().set_seed(seed);
    fault::Registry::instance().arm_from_spec("dump.bitflip:nth=1");
    std::string mutant = *raw;
    ASSERT_TRUE(fault::apply_byte_faults("dump", &mutant));
    fault::Registry::instance().reset();
    // Either rejected or analyzed; both are fine, crashing is not.
    if (auto p = analyzer::Profile::load_bytes(mutant)) {
      p->method_stats();
      p->call_edges();
      p->folded_stacks();
    }
  }
  remove_tree(dir);
}

TEST_F(FaultScenarioTest, DumpFailFaultFailsDumpGracefully) {
  std::string dir = make_temp_dir("teeperf_dumpfail_");
  RecorderOptions opts;
  opts.counter_mode = CounterMode::kSteadyClock;
  auto rec = Recorder::create(opts);
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->attach());
  { TEEPERF_SCOPE("df::work"); }
  rec->detach();
  fault::ScopedFault f("dump.fail:nth=1");
  EXPECT_FALSE(rec->dump(dir + "/never"));
  EXPECT_FALSE(file_exists(dir + "/never.log"));
  remove_tree(dir);
}

// --- counter faults ---------------------------------------------------------

TEST_F(FaultScenarioTest, CounterStallTripsWatchdog) {
  // Freeze the software counter on its first batch; the watchdog must raise
  // the stall alarm that Recorder::stats() surfaces.
  fault::Registry::instance().arm_from_spec("counter.stall:nth=1");
  RecorderOptions opts;
  opts.counter_mode = CounterMode::kSoftware;
  opts.software_counter_yield = 1024;
  opts.watchdog_interval_ms = 10;
  auto rec = Recorder::create(opts);
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->attach());
  bool stalled = false;
  for (int i = 0; i < 200 && !stalled; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stalled = rec->stats().counter_stalled;
  }
  rec->detach();
  EXPECT_TRUE(stalled);
}

TEST_F(FaultScenarioTest, CounterBackjumpDrivesCounterBackwards) {
  fault::Registry::instance().arm_from_spec("counter.backjump:nth=2,sticky");
  LogHeader header;
  header.counter.store(1'000'000'000ull, std::memory_order_relaxed);
  SoftwareCounter counter(&header, /*yield_every=*/1024);
  counter.start();
  // Sticky backjumps subtract more per batch than the batch adds, so the
  // shared word trends downwards — observable without racing a single jump.
  u64 c0 = header.counter.load(std::memory_order_relaxed);
  u64 c1 = c0;
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    c1 = header.counter.load(std::memory_order_relaxed);
    if (c1 < c0) break;
  }
  counter.stop();
  EXPECT_LT(c1, c0);
}

TEST_F(FaultScenarioTest, ValidateFlagsBackwardsCounter) {
  // The analyzer-side view of the same defect: a backwards counter within a
  // thread is a validation issue.
  std::vector<LogEntry> entries(3);
  entries[0].kind_and_counter = LogEntry::pack(EventKind::kCall, 100);
  entries[0].addr = 0x1;
  entries[1].kind_and_counter = LogEntry::pack(EventKind::kCall, 90);  // jump back
  entries[1].addr = 0x2;
  entries[2].kind_and_counter = LogEntry::pack(EventKind::kReturn, 95);
  entries[2].addr = 0x2;
  auto issues = analyzer::Profile::validate(entries.data(), entries.size());
  bool found = false;
  for (const auto& issue : issues) {
    if (issue.kind == analyzer::ValidationIssue::Kind::kNonMonotonicCounter) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- watchdog backjump handling ---------------------------------------------

// Regression for the unsigned-delta wrap: `dc = c - last_counter_` on a
// backwards-moving counter used to wrap to ~2^64, making the window look
// like an absurdly fast (≈1e-13 ns/tick) healthy window that fed the drift
// baseline and poisoned every later comparison. The watchdog must instead
// classify the window as a backjump — its own journal event class and
// counter — and exclude it from ns/tick and the baseline entirely.
class WatchdogBackjumpTest : public FaultScenarioTest,
                             public ::testing::WithParamInterface<u64> {};

TEST_P(WatchdogBackjumpTest, BackjumpIsJournaledAndExcludedFromBaseline) {
  const u64 seed = GetParam();
  obs::TelemetryOptions topts;  // anonymous region
  auto t = obs::SelfTelemetry::create(topts);
  ASSERT_NE(t, nullptr);
  obs::WatchdogOptions wopts;
  wopts.interval_ms = 1;
  // Keep the orthogonal detectors out of the way: the scripted counter's
  // rate jitters with scheduling (drift must not trip on that — pre-fix the
  // wrapped window deviated by ~1e12×, which still trips 10.0), and pauses
  // between the scripted advances must not read as stalls.
  wopts.drift_threshold = 10.0;
  wopts.stall_windows = 1'000'000;
  std::atomic<u64> val{1'000'000};
  obs::Watchdog wd(&t->registry(), &t->journal(),
                   [&val] { return val.load(std::memory_order_relaxed); },
                   "scripted", wopts);
  wd.start();
  auto advance = [&](int windows) {
    for (int i = 0; i < windows; ++i) {
      val.fetch_add(10'000, std::memory_order_relaxed);
      usleep(2'000);
    }
  };
  advance(8);  // healthy windows; arms the calibrated baseline
  val.fetch_sub(100'000 * seed, std::memory_order_relaxed);  // the backjump
  u64 deadline = monotonic_ns() + 5'000'000'000ull;
  while (wd.backjumps() == 0 && monotonic_ns() < deadline) usleep(1000);
  advance(8);  // recovery: forward progress from the lower value
  wd.stop();

  EXPECT_GE(wd.backjumps(), 1u);
  EXPECT_FALSE(wd.stalled());
  // The wrapped window never reached the drift detector.
  EXPECT_EQ(t->registry().counter(obs::metric_names::kWatchdogDriftEvents)
                .value(),
            0u);
  EXPECT_EQ(t->registry().gauge(obs::metric_names::kCounterDrifting).value(),
            0u);
  // Distinct journal event class, with the regressed value in arg0.
  bool journaled = false;
  for (const obs::Event& ev : t->journal().snapshot()) {
    if (ev.type == obs::EventType::kCounterBackjump) {
      journaled = true;
      EXPECT_LT(ev.arg0, ev.arg1);  // new value < previous value
    }
  }
  EXPECT_TRUE(journaled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WatchdogBackjumpTest, ::testing::Values(1, 2, 3));

// --- replicated counter fail-over -------------------------------------------

// End-to-end (DESIGN.md §13): a session with three counter replicas whose
// elected primary is stalled by fault injection must fail over (gauge +
// journal event), keep the probe-visible timeline monotonic, and still
// produce a dump whose calibrated time agrees with the wall clock.
class ReplicatedCounterFailoverTest : public FaultScenarioTest,
                                      public ::testing::WithParamInterface<u64> {
};

TEST_P(ReplicatedCounterFailoverTest, PrimaryStallFailsOverCalibrated) {
  const u64 seed = GetParam();
  fault::Registry::instance().set_seed(seed);
  // nth varies the stall point across seeds: the Nth primary batch check.
  fault::Registry::instance().arm_from_spec("counter.stall.primary:nth=" +
                                            std::to_string(seed));
  RecorderOptions opts;
  opts.counter_mode = CounterMode::kSoftware;
  opts.counter_replicas = 3;
  opts.software_counter_yield = 1024;
  opts.watchdog_interval_ms = 10;
  auto rec = Recorder::create(opts);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->log().counter_replica_count(), 3u);
  ASSERT_TRUE(rec->attach());

  // The workload starts immediately, so the stall and the fail-over happen
  // mid-profile and the calibration span coincides with the measured wall
  // window (a separate wait phase would let the counter rate differ between
  // calibration and measurement and skew the estimate on a loaded machine).
  // The probe-visible header word must never move backwards across the
  // switch.
  u64 wall0 = monotonic_ns();
  u64 prev = 0;
  bool monotonic = true;
  for (int i = 0; i < 40; ++i) {
    TEEPERF_SCOPE("replicated::spin");
    spin_for_ns(5'000'000);
    u64 now = rec->log().header()->counter.load(std::memory_order_relaxed);
    if (now < prev) monotonic = false;
    prev = now;
  }
  double wall = static_cast<double>(monotonic_ns() - wall0);
  EXPECT_TRUE(monotonic);

  // The fail-over completed somewhere inside the workload (the primary's
  // stall fires within its first few tick batches).
  u64 deadline = monotonic_ns() + 10'000'000'000ull;
  while (rec->stats().counter_failovers == 0 && monotonic_ns() < deadline) {
    spin_for_ns(1'000'000);
  }
  Recorder::Stats stats = rec->stats();
  ASSERT_GE(stats.counter_failovers, 1u);
  EXPECT_EQ(stats.counter_replicas, 3u);

  // The watchdog publishes the fail-over; the journal carries the event.
  ASSERT_NE(rec->telemetry(), nullptr);
  deadline = monotonic_ns() + 5'000'000'000ull;
  while (rec->telemetry()
                 ->registry()
                 .gauge(obs::metric_names::kCounterFailover)
                 .value() == 0 &&
         monotonic_ns() < deadline) {
    spin_for_ns(1'000'000);
  }
  EXPECT_GE(rec->telemetry()
                ->registry()
                .gauge(obs::metric_names::kCounterFailover)
                .value(),
            1u);
  bool journaled = false;
  for (const obs::Event& ev : rec->telemetry()->journal().snapshot()) {
    if (ev.type == obs::EventType::kCounterFailover) journaled = true;
  }
  EXPECT_TRUE(journaled);

  // Dump while the replicated counter (and its running calibration) is
  // still alive, then check the calibrated report end to end.
  std::string dir = make_temp_dir("teeperf_replicated_");
  ASSERT_TRUE(rec->dump(dir + "/run"));
  rec->detach();

  auto profile = analyzer::Profile::load(dir + "/run");
  ASSERT_TRUE(profile.has_value());
  ASSERT_GT(profile->ns_per_tick(), 0.0);
  // Monotonic timestamps survive reconstruction: no backwards counters.
  for (const auto& issue : analyzer::Profile::validate(rec->log())) {
    EXPECT_NE(issue.kind,
              analyzer::ValidationIssue::Kind::kNonMonotonicCounter);
  }
  double est = 0.0;
  for (const auto& m : profile->method_stats()) {
    if (profile->name(m.method) == "replicated::spin") {
      est = profile->ticks_to_ns(m.inclusive_total);
    }
  }
  ASSERT_GT(est, 0.0);
  // Calibrated time within 20% of the wall clock around the same loop.
  EXPECT_LE(std::fabs(est - wall) / wall, 0.20)
      << "calibrated " << est / 1e6 << " ms vs wall " << wall / 1e6 << " ms";
  remove_tree(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicatedCounterFailoverTest,
                         ::testing::Values(1, 2, 3));

// --- shared-memory faults ---------------------------------------------------

TEST_F(FaultScenarioTest, ShmCreateFailMakesRecorderCreateFail) {
  fault::ScopedFault f("shm.create.fail:nth=1");
  RecorderOptions opts;
  opts.counter_mode = CounterMode::kSteadyClock;
  opts.shm_name = "/teeperf_fault_create_" + std::to_string(::getpid());
  EXPECT_EQ(Recorder::create(opts), nullptr);
}

TEST_F(FaultScenarioTest, ShmOpenFailAndTruncationAreRejected) {
  std::string name = "/teeperf_fault_trunc_" + std::to_string(::getpid());
  SharedMemoryRegion creator;
  ASSERT_TRUE(creator.create(name, ProfileLog::bytes_for(1024)));
  ProfileLog log;
  ASSERT_TRUE(log.init(creator.data(), creator.size(), 42, 0));

  {  // Open failure: reported, not crashed.
    fault::ScopedFault f("shm.open.fail:nth=1");
    SharedMemoryRegion view;
    EXPECT_FALSE(view.open(name));
  }
  {  // Truncated mapping: adopt() sees a header whose max_entries no longer
     // fits the region and must refuse it.
    fault::ScopedFault f("shm.open.truncate:nth=1");
    SharedMemoryRegion view;
    ASSERT_TRUE(view.open(name));
    ASSERT_LT(view.size(), creator.size());
    ProfileLog adopted;
    EXPECT_FALSE(adopted.adopt(view.data(), view.size()));
  }
}

TEST_F(FaultScenarioTest, AdoptRejectsOverflowingHeaders) {
  // Hostile header fields that used to overflow the size check.
  std::vector<u8> buf(ProfileLog::bytes_for(4));
  ProfileLog log;
  ASSERT_TRUE(log.init(buf.data(), buf.size(), 42, 0));
  auto* header = reinterpret_cast<LogHeader*>(buf.data());

  header->max_entries = 1ull << 61;  // max_entries * 32 wraps u64
  ProfileLog adopted;
  EXPECT_FALSE(adopted.adopt(buf.data(), buf.size()));

  header->max_entries = 0;  // would divide-by-zero in ring append
  EXPECT_FALSE(adopted.adopt(buf.data(), buf.size()));

  header->max_entries = 4;  // restored: adoptable again
  EXPECT_TRUE(adopted.adopt(buf.data(), buf.size()));
}

// --- EPC exhaustion ---------------------------------------------------------

TEST_F(FaultScenarioTest, EpcAllocFailReturnsNull) {
  tee::Enclave e(tee::CostModel::zero());
  tee::EpcAllocator epc(&e, 8);
  fault::ScopedFault f("epc.alloc_fail:nth=1");
  EXPECT_EQ(epc.allocate(2 * tee::kEpcPageSize), nullptr);
  // One-shot: the next allocation succeeds.
  EXPECT_NE(epc.allocate(2 * tee::kEpcPageSize), nullptr);
}

TEST_F(FaultScenarioTest, EpcExhaustionMidProfileEvictsToOnePage) {
  tee::Enclave e(tee::CostModel::zero());
  tee::EpcAllocator epc(&e, 64);
  auto buf = epc.allocate(17 * tee::kEpcPageSize);
  ASSERT_NE(buf, nullptr);
  for (usize p = 0; p < 16; ++p) {
    buf->touch(p * tee::kEpcPageSize, 1, true);
  }
  ASSERT_EQ(epc.resident_count(), 16u);
  u64 outs_before = epc.page_outs();

  // Exhaustion strikes while paging in the 17th page: the resident limit
  // collapses to a single page and the CLOCK evictor pages everything else
  // out before admitting it.
  fault::ScopedFault f("epc.exhaust:nth=1");
  buf->touch(16 * tee::kEpcPageSize, 1, false);
  EXPECT_EQ(epc.resident_count(), 1u);
  EXPECT_GT(epc.page_outs(), outs_before);
}

}  // namespace
}  // namespace teeperf
