// Unit tests for the deterministic fault-injection registry
// (src/faultsim/fault.h): arming semantics, spec parsing, seeded
// determinism, env arming, the external-arming bridge, and the generic
// byte-corruption helpers.
#include "faultsim/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

namespace teeperf::fault {
namespace {

class FaultsimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset();
    Registry::instance().set_seed(1);
  }
  void TearDown() override {
    Registry::instance().reset();
    Registry::instance().clear_external();
  }
};

TEST_F(FaultsimTest, UnarmedFiresNothing) {
  EXPECT_FALSE(Registry::instance().any_armed());
  EXPECT_FALSE(fires("some.point"));
  EXPECT_EQ(Registry::instance().hits("some.point"), 0u);
}

TEST_F(FaultsimTest, NthFiresExactlyOnceOnTheNthHit) {
  Spec s;
  s.mode = Mode::kNth;
  s.n = 3;
  Registry::instance().arm("p", s);
  EXPECT_TRUE(Registry::instance().any_armed());
  EXPECT_FALSE(fires("p"));  // hit 1
  EXPECT_FALSE(fires("p"));  // hit 2
  EXPECT_TRUE(fires("p"));   // hit 3: fires and disarms
  EXPECT_FALSE(Registry::instance().any_armed());
  EXPECT_FALSE(fires("p"));  // disarmed: never again
  EXPECT_EQ(Registry::instance().fire_count("p"), 1u);
}

TEST_F(FaultsimTest, StickyNthKeepsFiring) {
  Spec s;
  s.mode = Mode::kNth;
  s.n = 2;
  s.sticky = true;
  Registry::instance().arm("p", s);
  EXPECT_FALSE(fires("p"));
  EXPECT_TRUE(fires("p"));
  EXPECT_TRUE(fires("p"));
  EXPECT_TRUE(fires("p"));
  EXPECT_TRUE(Registry::instance().any_armed());
  EXPECT_EQ(Registry::instance().fire_count("p"), 3u);
}

TEST_F(FaultsimTest, ProbabilityIsSeededAndDeterministic) {
  auto run = [](u64 seed) {
    Registry::instance().reset();
    Registry::instance().set_seed(seed);
    Spec s;
    s.mode = Mode::kProbability;
    s.p = 0.5;
    Registry::instance().arm("p", s);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(fires("p"));
    return fired;
  };
  auto a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);        // same seed: same decisions
  EXPECT_NE(a, c);        // different seed: different decisions
  int count = 0;
  for (bool f : a) count += f;
  EXPECT_GT(count, 16);   // p=0.5 over 64 draws: nowhere near 0 or 64
  EXPECT_LT(count, 48);
}

TEST_F(FaultsimTest, ProbabilityZeroAndOne) {
  Spec never;
  never.mode = Mode::kProbability;
  never.p = 0.0;
  Registry::instance().arm("never", never);
  Spec always;
  always.mode = Mode::kProbability;
  always.p = 1.0;
  Registry::instance().arm("always", always);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(fires("never"));
    EXPECT_TRUE(fires("always"));
  }
}

TEST_F(FaultsimTest, ValueBelowIsDeterministicPerSeedAndName) {
  Registry::instance().set_seed(42);
  std::vector<u64> first;
  for (int i = 0; i < 8; ++i) first.push_back(value_below("x", 1000));
  Registry::instance().reset();
  Registry::instance().set_seed(42);
  std::vector<u64> second;
  for (int i = 0; i < 8; ++i) second.push_back(value_below("x", 1000));
  EXPECT_EQ(first, second);
  for (u64 v : first) EXPECT_LT(v, 1000u);
  EXPECT_EQ(value_below("anything", 0), 0u);
  // Different names draw from different streams.
  Registry::instance().reset();
  Registry::instance().set_seed(42);
  EXPECT_NE(value_below("x", 1ull << 62), value_below("y", 1ull << 62));
}

TEST_F(FaultsimTest, SpecStringParses) {
  ASSERT_TRUE(Registry::instance().arm_from_spec(
      "dump.torn:nth=3;wal.read.flip:p=0.5;epc.exhaust:nth=2,sticky;plain"));
  // plain → nth=1: first hit fires.
  EXPECT_TRUE(fires("plain"));
  // nth=3 point waits for its third hit.
  EXPECT_FALSE(fires("dump.torn"));
  EXPECT_FALSE(fires("dump.torn"));
  EXPECT_TRUE(fires("dump.torn"));
  // sticky nth=2.
  EXPECT_FALSE(fires("epc.exhaust"));
  EXPECT_TRUE(fires("epc.exhaust"));
  EXPECT_TRUE(fires("epc.exhaust"));
}

TEST_F(FaultsimTest, MalformedSpecArmsNothing) {
  const char* bad[] = {
      "",                 // empty
      "p:nth=0",          // nth must be >= 1
      "p:nth=abc",        // not a number
      "p:p=1.5",          // probability out of range
      "p:bogus=1",        // unknown option
      ":nth=1",           // empty name
      "good:nth=1;p:p=x", // malformed tail must not arm the good head
      "p:sticky",         // sticky without a trigger
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(Registry::instance().arm_from_spec(spec, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
    EXPECT_FALSE(Registry::instance().any_armed()) << spec;
  }
}

TEST_F(FaultsimTest, ArmFromEnv) {
  setenv("TEEPERF_FAULTS", "env.point:nth=2", 1);
  setenv("TEEPERF_FAULT_SEED", "99", 1);
  Registry::instance().arm_from_env();
  unsetenv("TEEPERF_FAULTS");
  unsetenv("TEEPERF_FAULT_SEED");
  EXPECT_EQ(Registry::instance().seed(), 99u);
  EXPECT_FALSE(fires("env.point"));
  EXPECT_TRUE(fires("env.point"));
}

TEST_F(FaultsimTest, MalformedEnvSpecIsIgnored) {
  setenv("TEEPERF_FAULTS", "broken:nth=", 1);
  Registry::instance().arm_from_env();
  unsetenv("TEEPERF_FAULTS");
  EXPECT_FALSE(Registry::instance().any_armed());
}

TEST_F(FaultsimTest, ExternalArmingViaPoll) {
  std::map<std::string, u64> pending{{"dump.fail", 2}};
  std::vector<std::string> cleared;
  Registry::instance().set_external(
      [&pending](const std::string& name) -> u64 {
        auto it = pending.find(name);
        return it == pending.end() ? 0 : it->second;
      },
      [&](const std::string& name) {
        pending.erase(name);
        cleared.push_back(name);
      });

  Registry::instance().poll_external();
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0], "dump.fail");
  EXPECT_TRUE(Registry::instance().any_armed());
  EXPECT_FALSE(fires("dump.fail"));
  EXPECT_TRUE(fires("dump.fail"));  // armed nth=2 counting from the poll

  // A second poll with nothing pending arms nothing new.
  Registry::instance().poll_external();
  EXPECT_FALSE(Registry::instance().any_armed());
}

TEST_F(FaultsimTest, PollWithoutBridgeIsANoOp) {
  Registry::instance().clear_external();
  Registry::instance().poll_external();
  EXPECT_FALSE(Registry::instance().any_armed());
}

TEST_F(FaultsimTest, ApplyByteFaultsTorn) {
  Registry::instance().arm_from_spec("dump.torn:nth=1");
  std::string bytes(256, 'x');
  EXPECT_TRUE(apply_byte_faults("dump", &bytes));
  EXPECT_GE(bytes.size(), 1u);
  EXPECT_LT(bytes.size(), 256u);

  // Deterministic: replaying from the same seed truncates identically.
  usize first_cut = bytes.size();
  Registry::instance().reset();
  Registry::instance().set_seed(1);
  Registry::instance().arm_from_spec("dump.torn:nth=1");
  std::string again(256, 'x');
  apply_byte_faults("dump", &again);
  EXPECT_EQ(again.size(), first_cut);
}

TEST_F(FaultsimTest, ApplyByteFaultsBitflip) {
  Registry::instance().arm_from_spec("dump.bitflip:nth=1");
  std::string bytes(64, '\0');
  EXPECT_TRUE(apply_byte_faults("dump", &bytes));
  EXPECT_EQ(bytes.size(), 64u);
  int diff_bits = 0;
  for (char c : bytes) {
    for (int b = 0; b < 8; ++b) diff_bits += (c >> b) & 1;
  }
  EXPECT_EQ(diff_bits, 1);  // exactly one bit flipped
}

TEST_F(FaultsimTest, ApplyByteFaultsUnarmedIsIdentity) {
  std::string bytes(64, 'y');
  EXPECT_FALSE(apply_byte_faults("dump", &bytes));
  EXPECT_EQ(bytes, std::string(64, 'y'));
}

TEST_F(FaultsimTest, ScopedFaultResetsOnExit) {
  {
    ScopedFault f("scoped.point:nth=1");
    EXPECT_TRUE(Registry::instance().any_armed());
  }
  EXPECT_FALSE(Registry::instance().any_armed());
}

}  // namespace
}  // namespace teeperf::fault
