// Property tests for the analyzer query interface (src/analyzer/query.h):
// every combinator is checked against a brute-force reference computed
// directly from Profile::invocations(), over many randomly generated (but
// seeded, deterministic) call/return logs. Catches drift between the
// indexed table implementation and the semantics it promises.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "analyzer/profile.h"
#include "analyzer/query.h"
#include "common/rng.h"
#include "core/log_format.h"

namespace teeperf::analyzer {
namespace {

// A deterministic random workload: several threads making balanced (mostly)
// call/return sequences over a small method pool, so filters and groupings
// see real collisions. Some stacks are deliberately left open so
// complete_only() has something to cut.
std::vector<u8> make_random_log(u64 seed, ProfileLog* log) {
  std::vector<u8> buf(ProfileLog::bytes_for(4096));
  log->init(buf.data(), buf.size(), 1,
            log_flags::kActive | log_flags::kRecordCalls |
                log_flags::kRecordReturns);

  Xorshift64 rng(seed);
  constexpr u64 kMethods[] = {0x100, 0x200, 0x300, 0x400, 0x500, 0x600};
  const u64 num_threads = 1 + rng.next_below(3);
  std::vector<std::vector<u64>> stacks(static_cast<usize>(num_threads));
  u64 counter = 10;

  const u64 events = 80 + rng.next_below(120);
  for (u64 i = 0; i < events; ++i) {
    u64 tid = rng.next_below(num_threads);
    auto& stack = stacks[static_cast<usize>(tid)];
    counter += 1 + rng.next_below(50);
    bool do_call = stack.empty() || (stack.size() < 6 && rng.next_bool(0.55));
    if (do_call) {
      u64 m = kMethods[rng.next_below(6)];
      stack.push_back(m);
      log->append(EventKind::kCall, m, tid, counter);
    } else {
      log->append(EventKind::kReturn, stack.back(), tid, counter);
      stack.pop_back();
    }
  }
  // Close most (not all) open frames, so both complete and truncated
  // invocations exist.
  for (u64 tid = 0; tid < num_threads; ++tid) {
    auto& stack = stacks[static_cast<usize>(tid)];
    while (stack.size() > (tid == 0 ? 1u : 0u)) {
      counter += 1 + rng.next_below(50);
      log->append(EventKind::kReturn, stack.back(), tid, counter);
      stack.pop_back();
    }
  }
  return buf;
}

using Row = std::tuple<u64, u64, u64, u64, u32, bool>;
Row row_id(const Invocation& i) {
  return {i.method, i.tid, i.start, i.end, i.depth, i.complete};
}

std::vector<Row> rows_of(const InvocationTable& t) {
  std::vector<Row> out;
  for (usize i = 0; i < t.count(); ++i) out.push_back(row_id(t.row(i)));
  return out;
}

// Brute-force reference: plain loop over all invocations, keeping those
// that satisfy `pred`, in original order.
template <typename Pred>
std::vector<Row> brute_filter(const Profile& p, Pred pred) {
  std::vector<Row> out;
  for (const Invocation& i : p.invocations()) {
    if (pred(i)) out.push_back(row_id(i));
  }
  return out;
}

class QueryPropertyTest : public ::testing::TestWithParam<u64> {};

TEST_P(QueryPropertyTest, FiltersMatchBruteForce) {
  ProfileLog log;
  auto buf = make_random_log(GetParam(), &log);
  Profile p = Profile::from_log(log, {}, 1.0);
  ASSERT_FALSE(p.invocations().empty());
  InvocationTable t(p);
  EXPECT_EQ(t.count(), p.invocations().size());

  EXPECT_EQ(rows_of(t.where_method(0x200)),
            brute_filter(p, [](const Invocation& i) { return i.method == 0x200; }));
  EXPECT_EQ(rows_of(t.where_tid(1)),
            brute_filter(p, [](const Invocation& i) { return i.tid == 1; }));
  EXPECT_EQ(rows_of(t.where_depth_between(1, 3)),
            brute_filter(p, [](const Invocation& i) {
              return i.depth >= 1 && i.depth <= 3;
            }));
  EXPECT_EQ(rows_of(t.complete_only()),
            brute_filter(p, [](const Invocation& i) { return i.complete; }));

  u64 median_ticks = t.sort_by(SortKey::kInclusive)
                         .row(t.count() / 2)
                         .inclusive();
  EXPECT_EQ(rows_of(t.where_min_inclusive(median_ticks)),
            brute_filter(p, [median_ticks](const Invocation& i) {
              return i.inclusive() >= median_ticks;
            }));

  // Filters compose: each narrows the previous result.
  auto composed = t.where_tid(0).where_depth_between(0, 2).complete_only();
  EXPECT_EQ(rows_of(composed), brute_filter(p, [](const Invocation& i) {
              return i.tid == 0 && i.depth <= 2 && i.complete;
            }));
}

TEST_P(QueryPropertyTest, CalledUnderMatchesAncestryWalk) {
  ProfileLog log;
  auto buf = make_random_log(GetParam(), &log);
  Profile p = Profile::from_log(log, {}, 1.0);
  const auto& all = p.invocations();
  for (u64 ancestor : {u64{0x100}, u64{0x300}, u64{0x999}}) {
    auto expected = brute_filter(p, [&all, ancestor](const Invocation& i) {
      for (i64 q = i.parent; q >= 0; q = all[static_cast<usize>(q)].parent) {
        if (all[static_cast<usize>(q)].method == ancestor) return true;
      }
      return false;
    });
    EXPECT_EQ(rows_of(InvocationTable(p).where_called_under(ancestor)), expected);
  }
}

TEST_P(QueryPropertyTest, SortAndTopMatchStableSortReference) {
  ProfileLog log;
  auto buf = make_random_log(GetParam(), &log);
  Profile p = Profile::from_log(log, {}, 1.0);
  const auto& all = p.invocations();

  for (SortKey key : {SortKey::kInclusive, SortKey::kExclusive, SortKey::kStart,
                      SortKey::kDepth, SortKey::kCallsMade}) {
    auto value = [key](const Invocation& i) -> u64 {
      switch (key) {
        case SortKey::kInclusive: return i.inclusive();
        case SortKey::kExclusive: return i.exclusive();
        case SortKey::kStart: return i.start;
        case SortKey::kDepth: return i.depth;
        case SortKey::kCallsMade: return i.calls_made;
      }
      return 0;
    };
    for (bool descending : {true, false}) {
      std::vector<usize> ref(all.size());
      for (usize i = 0; i < all.size(); ++i) ref[i] = i;
      std::stable_sort(ref.begin(), ref.end(), [&](usize a, usize b) {
        return descending ? value(all[a]) > value(all[b])
                          : value(all[a]) < value(all[b]);
      });
      std::vector<Row> expected;
      for (usize r : ref) expected.push_back(row_id(all[r]));

      auto sorted = InvocationTable(p).sort_by(key, descending);
      EXPECT_EQ(rows_of(sorted), expected);

      // top(n) is a plain prefix, and never reads past the end.
      auto top3 = sorted.top(3);
      expected.resize(std::min<usize>(3, expected.size()));
      EXPECT_EQ(rows_of(top3), expected);
      EXPECT_EQ(sorted.top(all.size() + 100).count(), all.size());
    }
  }
}

TEST_P(QueryPropertyTest, ScalarAggregatesMatchBruteForce) {
  ProfileLog log;
  auto buf = make_random_log(GetParam(), &log);
  Profile p = Profile::from_log(log, {}, 1.0);
  InvocationTable t = InvocationTable(p).where_depth_between(0, 2);

  u64 sum_inc = 0, sum_exc = 0, max_inc = 0;
  usize n = 0;
  for (const Invocation& i : p.invocations()) {
    if (i.depth > 2) continue;
    sum_inc += i.inclusive();
    sum_exc += i.exclusive();
    max_inc = std::max(max_inc, i.inclusive());
    ++n;
  }
  EXPECT_EQ(t.count(), n);
  EXPECT_EQ(t.sum_inclusive(), sum_inc);
  EXPECT_EQ(t.sum_exclusive(), sum_exc);
  EXPECT_EQ(t.max_inclusive(), max_inc);
  if (n > 0) {
    EXPECT_DOUBLE_EQ(t.mean_inclusive(),
                     static_cast<double>(sum_inc) / static_cast<double>(n));
  }

  // Exclusive never exceeds inclusive, and a parent's inclusive covers the
  // sum of its children — structural invariants the aggregates rely on.
  const auto& all = p.invocations();
  std::vector<u64> child_sum(all.size(), 0);
  for (const Invocation& i : all) {
    EXPECT_LE(i.exclusive(), i.inclusive());
    if (i.parent >= 0) {
      child_sum[static_cast<usize>(i.parent)] += i.inclusive();
    }
  }
  for (usize i = 0; i < all.size(); ++i) {
    if (all[i].complete) {
      EXPECT_LE(child_sum[i], all[i].inclusive());
    }
  }
}

TEST_P(QueryPropertyTest, GroupedAggregatesMatchBruteForce) {
  ProfileLog log;
  auto buf = make_random_log(GetParam(), &log);
  Profile p = Profile::from_log(log, {}, 1.0);
  const auto& all = p.invocations();

  struct Agg {
    usize count = 0;
    u64 inc = 0, exc = 0;
  };
  auto check = [&](const std::vector<InvocationTable::Group>& groups,
                   const std::map<std::string, Agg>& expected) {
    ASSERT_EQ(groups.size(), expected.size());
    // Order contract: non-increasing exclusive_total.
    for (usize i = 1; i < groups.size(); ++i) {
      EXPECT_GE(groups[i - 1].exclusive_total, groups[i].exclusive_total);
    }
    // Content contract: exact per-key aggregates (order-independent, since
    // ties may come back in any order).
    for (const auto& g : groups) {
      auto it = expected.find(g.key);
      ASSERT_NE(it, expected.end()) << "unexpected group " << g.key;
      EXPECT_EQ(g.count, it->second.count) << g.key;
      EXPECT_EQ(g.inclusive_total, it->second.inc) << g.key;
      EXPECT_EQ(g.exclusive_total, it->second.exc) << g.key;
    }
  };

  std::map<std::string, Agg> by_method, by_caller;
  for (const Invocation& i : all) {
    Agg& m = by_method[p.name(i.method)];
    ++m.count;
    m.inc += i.inclusive();
    m.exc += i.exclusive();
    std::string caller = i.parent < 0
                             ? "<root>"
                             : p.name(all[static_cast<usize>(i.parent)].method);
    Agg& c = by_caller[caller];
    ++c.count;
    c.inc += i.inclusive();
    c.exc += i.exclusive();
  }
  check(InvocationTable(p).group_by_method(), by_method);
  check(InvocationTable(p).group_by_caller(), by_caller);

  // Grouping partitions the table: totals across groups equal the table's.
  u64 grand_inc = 0;
  usize grand_count = 0;
  for (const auto& g : InvocationTable(p).group_by_tid()) {
    grand_inc += g.inclusive_total;
    grand_count += g.count;
  }
  EXPECT_EQ(grand_count, all.size());
  EXPECT_EQ(grand_inc, InvocationTable(p).sum_inclusive());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Range(u64{1}, u64{33}));

}  // namespace
}  // namespace teeperf::analyzer
