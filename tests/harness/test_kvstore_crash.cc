// Crash consistency for the kvstore substrate: a writer SIGKILLed during a
// Put burst must lose nothing it acknowledged, the WAL's CRC framing must
// reject torn and bit-flipped records, and SSTable opening must reject
// flipped images — the Speicher-style "untrusted host storage" threat
// model the kvstore exists to exercise (see TESTING.md).
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "common/fileutil.h"
#include "faultsim/fault.h"
#include "kvstore/db.h"
#include "kvstore/dbformat.h"
#include "kvstore/sstable.h"
#include "kvstore/wal.h"

namespace teeperf::kvs {
namespace {

class KvstoreCrashTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = make_temp_dir("teeperf_kvcrash_"); }
  void TearDown() override {
    fault::Registry::instance().reset();
    remove_tree(dir_);
  }
  std::string dir_;
};

std::string key_of(u32 i) { return "key" + std::to_string(1000000 + i); }
std::string value_of(u32 i) { return "value_" + std::to_string(i); }

// --- SIGKILL during a Put burst --------------------------------------------

TEST_F(KvstoreCrashTest, AcknowledgedWritesSurviveSigkill) {
  int pipefd[2];
  ASSERT_EQ(pipe(pipefd), 0);

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: open the DB and stream Puts, acknowledging each one through
    // the pipe only after Put returned OK (i.e. after the WAL frame was
    // written and flushed). The parent kills us mid-burst.
    close(pipefd[0]);
    Options options;
    std::unique_ptr<DB> db;
    if (!DB::open(options, dir_ + "/db", &db).is_ok()) _exit(2);
    WriteOptions wopts;
    for (u32 i = 0; i < 1000000; ++i) {
      if (!db->put(wopts, key_of(i), value_of(i)).is_ok()) _exit(3);
      if (write(pipefd[1], &i, sizeof(i)) != sizeof(i)) _exit(4);
    }
    _exit(0);
  }

  close(pipefd[1]);
  // Let the child get a few hundred acknowledged writes in, then kill it
  // without warning.
  u32 ack = 0;
  u32 acks_seen = 0;
  while (acks_seen < 300) {
    ssize_t r = read(pipefd[0], &ack, sizeof(ack));
    ASSERT_EQ(r, static_cast<ssize_t>(sizeof(ack)));
    ++acks_seen;
  }
  kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Drain acknowledgements that raced the kill: they were acknowledged, so
  // they count too.
  u32 last_acked = ack;
  while (read(pipefd[0], &ack, sizeof(ack)) == static_cast<ssize_t>(sizeof(ack))) {
    last_acked = ack;
  }
  close(pipefd[0]);
  ASSERT_GE(last_acked, 299u);

  // Reopen: every acknowledged key must be present with its exact value.
  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::open(options, dir_ + "/db", &db).is_ok());
  ReadOptions ropts;
  for (u32 i = 0; i <= last_acked; ++i) {
    std::string value;
    Status s = db->get(ropts, key_of(i), &value);
    ASSERT_TRUE(s.is_ok()) << "acked key " << i << " lost: " << s.to_string();
    EXPECT_EQ(value, value_of(i));
  }
}

// --- torn WAL tail ----------------------------------------------------------

TEST_F(KvstoreCrashTest, TornWalRecordIsUnackedAndIgnoredOnReopen) {
  {
    Options options;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::open(options, dir_ + "/db", &db).is_ok());
    WriteOptions wopts;
    for (u32 i = 0; i < 20; ++i) {
      ASSERT_TRUE(db->put(wopts, key_of(i), value_of(i)).is_ok());
    }
    // The 21st write tears mid-frame — exactly what a process death between
    // fwrite and completion leaves on disk. The Put must NOT be acked.
    fault::ScopedFault f("wal.append.torn:nth=1");
    Status s = db->put(wopts, key_of(20), value_of(20));
    EXPECT_FALSE(s.is_ok());
  }

  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::open(options, dir_ + "/db", &db).is_ok());
  ReadOptions ropts;
  for (u32 i = 0; i < 20; ++i) {
    std::string value;
    ASSERT_TRUE(db->get(ropts, key_of(i), &value).is_ok()) << "key " << i;
    EXPECT_EQ(value, value_of(i));
  }
  std::string value;
  EXPECT_FALSE(db->get(ropts, key_of(20), &value).is_ok());
}

// --- WAL CRC framing --------------------------------------------------------

TEST_F(KvstoreCrashTest, WalCrcRejectsBitFlips) {
  std::string wal_path = dir_ + "/flip.wal";
  {
    WalWriter writer;
    ASSERT_TRUE(writer.open(wal_path, true).is_ok());
    for (u32 i = 0; i < 16; ++i) {
      ASSERT_TRUE(writer.append("record_" + std::to_string(i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
  }

  for (u64 seed = 1; seed <= 8; ++seed) {
    fault::Registry::instance().reset();
    fault::Registry::instance().set_seed(seed);
    fault::Registry::instance().arm_from_spec("wal.read.flip:nth=1");

    // Lenient mode (recovery): the reader keeps the valid prefix and flags
    // the truncation. A single flipped bit can never slip past the CRC.
    std::vector<std::string> records;
    bool truncated = false;
    Status s = WalReader::read_all(wal_path, &records, &truncated, false);
    EXPECT_TRUE(s.is_ok());
    EXPECT_TRUE(truncated) << "seed " << seed;
    EXPECT_LT(records.size(), 16u) << "seed " << seed;
    for (usize i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i], "record_" + std::to_string(i));
    }

    // Strict mode (integrity audit): the same flip is a hard corruption.
    fault::Registry::instance().reset();
    fault::Registry::instance().set_seed(seed);
    fault::Registry::instance().arm_from_spec("wal.read.flip:nth=1");
    records.clear();
    s = WalReader::read_all(wal_path, &records, &truncated, true);
    EXPECT_FALSE(s.is_ok()) << "seed " << seed;
  }
}

// --- SSTable image corruption ----------------------------------------------

TEST_F(KvstoreCrashTest, SstableOpenRejectsBitFlips) {
  std::string table_path = dir_ + "/flip.sst";
  {
    Options options;
    TableBuilder builder(options);
    for (u32 i = 0; i < 200; ++i) {
      std::string ikey;
      append_internal_key(&ikey, key_of(i), i + 1, ValueType::kValue);
      builder.add(ikey, value_of(i));
    }
    ASSERT_TRUE(builder.finish(table_path).is_ok());
  }
  {  // Sanity: the intact image opens.
    Options options;
    std::unique_ptr<Table> table;
    ASSERT_TRUE(Table::open(table_path, options, &table).is_ok());
  }

  int rejected = 0;
  for (u64 seed = 1; seed <= 16; ++seed) {
    fault::Registry::instance().reset();
    fault::Registry::instance().set_seed(seed);
    fault::Registry::instance().arm_from_spec("sstable.open.flip:nth=1");
    Options options;
    std::unique_ptr<Table> table;
    Status s = Table::open(table_path, options, &table);
    fault::Registry::instance().reset();
    if (!s.is_ok()) {
      ++rejected;
      continue;
    }
    // A flip that landed in unvalidated metadata (e.g. the entry-count
    // footer field) may legitimately survive — but then the table must
    // still iterate without a crash or out-of-bounds read.
    auto it = table->new_iterator();
    usize n = 0;
    for (it->seek_to_first(); it->valid(); it->next()) ++n;
    EXPECT_LE(n, 200u);
  }
  // CRC + range validation must catch the overwhelming majority of flips.
  EXPECT_GT(rejected, 8);
}

}  // namespace
}  // namespace teeperf::kvs
