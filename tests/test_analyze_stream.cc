// Differential tests for the streaming analyzer (analyzer/stream.h,
// DESIGN.md §12): StreamAnalyzer must produce the byte-identical
// MergeableProfile that the in-memory pipeline
// (Profile::load / load_spill → MergeableProfile::from_profile) produces —
// over every corpus seed, over real drainer sessions (healthy, fault-seeded
// and torn), and over rejection decisions. Plus the golden `.mprof` layer
// (regenerate with TEEPERF_UPDATE_GOLDEN=1) and the bounded-memory property
// the streaming pass exists for: analyzing a spill session far larger than
// the shm window without ever holding it in memory.
#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer/mprof.h"
#include "analyzer/profile.h"
#include "analyzer/stream.h"
#include "common/fileutil.h"
#include "common/stringutil.h"
#include "core/log_format.h"
#include "drain/chunk_format.h"
#include "drain/drainer.h"
#include "faultsim/fault.h"

namespace teeperf {
namespace {

using analyzer::MergeableProfile;
using analyzer::Profile;
using analyzer::StreamAnalyzer;

std::string corpus_dir() {
  const char* dir = std::getenv("TEEPERF_CORPUS_DIR");
  return dir && *dir ? dir : "tests/corpus";
}

bool update_mode() {
  const char* u = std::getenv("TEEPERF_UPDATE_GOLDEN");
  return u && *u && std::string(u) != "0";
}

std::vector<std::string> seed_logs() {
  std::vector<std::string> names;
  DIR* d = opendir(corpus_dir().c_str());
  if (!d) return names;
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (starts_with(name, "seed_") && name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".log") == 0) {
      names.push_back(name.substr(0, name.size() - 4));
    }
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

void check_golden(const std::string& golden_path, const std::string& actual) {
  if (update_mode()) {
    ASSERT_TRUE(write_file(golden_path, actual)) << golden_path;
    return;
  }
  auto expected = read_file(golden_path);
  ASSERT_TRUE(expected) << "missing golden " << golden_path
                        << " — regenerate with TEEPERF_UPDATE_GOLDEN=1";
  EXPECT_EQ(*expected, actual)
      << "streaming analyzer output drifted from " << golden_path
      << " — if intentional, regenerate with TEEPERF_UPDATE_GOLDEN=1";
}

std::string tmp_prefix(const char* name) {
  return testing::TempDir() + "teeperf_stream_" + name + "." +
         std::to_string(getpid());
}

void remove_session(const std::string& prefix) {
  std::remove((prefix + ".log").c_str());
  for (u32 seq = 0;; ++seq) {
    std::string p = drain::chunk_path(prefix, seq);
    if (!file_exists(p)) break;
    std::remove(p.c_str());
  }
}

// Process-lifetime peak RSS — gtest_discover_tests runs each TEST in its
// own process, so deltas of this measure the enclosed phase's true peak,
// not just its settled footprint.
u64 peak_rss_bytes() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<u64>(ru.ru_maxrss) * 1024;
}

// The in-memory reference pipeline the streaming pass is held equal to.
std::string reference_bytes(const std::string& prefix) {
  auto ref = Profile::load(prefix);
  EXPECT_TRUE(ref.has_value());
  return ref ? MergeableProfile::from_profile(*ref).save() : std::string();
}

// ------------------------------------------------ drainer-session plumbing
// (the test_drain workload, sized down: 4 writers x 400 reps x 4 entries
// against a 1024-entry window — still ~6x the shm capacity)

constexpr int kWriters = 4;
constexpr u64 kReps = 400;
constexpr u64 kTotalEntries = kWriters * kReps * 4;
constexpr u64 kSpillCapacity = 1024;
constexpr u32 kShards = 2;

struct PatientWriters {
  PatientWriters() { ProfileLog::set_spill_wait_spins(~0ull); }
  ~PatientWriters() { ProfileLog::set_spill_wait_spins(u64{1} << 27); }
};

void run_workload(ProfileLog& log) {
  std::vector<std::thread> ws;
  ws.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    ws.emplace_back([&log, t] {
      LogBatch batch;
      const u64 tid = 100 + static_cast<u64>(t);
      const u64 base = 0x1000ull * static_cast<u64>(t + 1);
      u64 c = 1;
      for (u64 i = 0; i < kReps; ++i) {
        batch.record(log, EventKind::kCall, base, tid, c++);
        batch.record(log, EventKind::kCall, base + 1, tid, c++);
        batch.record(log, EventKind::kReturn, base + 1, tid, c++);
        batch.record(log, EventKind::kReturn, base, tid, c++);
      }
      batch.flush(log);
    });
  }
  for (auto& th : ws) th.join();
}

struct SpillLog {
  std::vector<u8> buf;
  ProfileLog log;
  explicit SpillLog(u64 capacity = kSpillCapacity, u32 shards = kShards) {
    buf.resize(ProfileLog::bytes_for(capacity, shards));
    EXPECT_TRUE(log.init(buf.data(), buf.size(), /*pid=*/1,
                         log_flags::kActive | log_flags::kMultithread |
                             log_flags::kSpillDrain,
                         shards));
  }
};

int run_supervised(ProfileLog& log, drain::Drainer& drainer) {
  std::atomic<bool> done{false};
  std::thread workload([&] {
    run_workload(log);
    done.store(true, std::memory_order_release);
  });
  int restarts = 0;
  while (!done.load(std::memory_order_acquire)) {
    if (drainer.dead()) {
      ++restarts;
      EXPECT_TRUE(drainer.restart());
    }
    usleep(500);
  }
  workload.join();
  if (drainer.dead()) {
    ++restarts;
    EXPECT_TRUE(drainer.restart());
  }
  return restarts;
}

// Runs one spill session to completion (chunks + residue dump on disk) and
// returns the drainer restart count.
int record_spill_session(const std::string& prefix, const char* fault_spec) {
  SpillLog s;
  drain::DrainerOptions dopts;
  dopts.prefix = prefix;
  dopts.chunk_entries = 256;
  dopts.poll_interval_us = 100;
  drain::Drainer drainer(&s.log, dopts);
  EXPECT_TRUE(drainer.start());
  int restarts;
  if (fault_spec) {
    fault::ScopedFault fault(fault_spec);
    restarts = run_supervised(s.log, drainer);
  } else {
    run_workload(s.log);
    restarts = 0;
  }
  EXPECT_TRUE(drainer.final_drain());
  EXPECT_EQ(s.log.dropped(), 0u);
  EXPECT_TRUE(write_file(prefix + ".log", s.log.serialize_compact()));
  return restarts;
}

// ------------------------------------------------------ corpus differential

TEST(AnalyzeStream, CorpusDifferentialByteIdentical) {
  std::vector<std::string> names = seed_logs();
  ASSERT_GE(names.size(), 8u) << "corpus dir: " << corpus_dir();
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    std::string prefix = corpus_dir() + "/" + name;
    auto ref = Profile::load(prefix);
    ASSERT_TRUE(ref.has_value()) << "loader rejected a trusted seed";
    std::string err;
    auto streamed = StreamAnalyzer::analyze(prefix, &err);
    ASSERT_TRUE(streamed.has_value()) << err;
    EXPECT_EQ(streamed->save(), MergeableProfile::from_profile(*ref).save());
    EXPECT_EQ(streamed->sessions, 1u);
  }
}

TEST(AnalyzeStream, CorpusGoldenMprofBitIdentical) {
  for (const std::string& name : seed_logs()) {
    SCOPED_TRACE(name);
    auto streamed = StreamAnalyzer::analyze(corpus_dir() + "/" + name);
    ASSERT_TRUE(streamed.has_value());
    std::string bytes = streamed->save();
    check_golden(corpus_dir() + "/golden/" + name + ".mprof", bytes);
    // The checked-in golden must itself load and re-serialize canonically.
    std::string err;
    auto loaded = MergeableProfile::load_bytes(bytes, &err);
    ASSERT_TRUE(loaded.has_value()) << err;
    EXPECT_EQ(loaded->save(), bytes);
  }
}

// ------------------------------------------------- spill-session differential

TEST(AnalyzeStream, SpillSessionDifferentialByteIdentical) {
  PatientWriters patient;
  std::string prefix = tmp_prefix("spill");
  remove_session(prefix);
  record_spill_session(prefix, nullptr);

  std::string ref = reference_bytes(prefix);
  std::string err;
  auto streamed = StreamAnalyzer::analyze_spill(prefix, &err);
  ASSERT_TRUE(streamed.has_value()) << err;
  EXPECT_EQ(streamed->save(), ref);
  EXPECT_EQ(streamed->stats.entries, kTotalEntries);
  EXPECT_EQ(streamed->stats.tombstones, 0u);

  // analyze() auto-detects the chunk sequence, like Profile::load.
  auto auto_detected = StreamAnalyzer::analyze(prefix, &err);
  ASSERT_TRUE(auto_detected.has_value()) << err;
  EXPECT_EQ(auto_detected->save(), ref);
  remove_session(prefix);
}

TEST(AnalyzeStream, FaultSeededDrainerDeathDifferential) {
  // The drainer dies and restarts mid-session: chunk overlap and resume
  // stitching in play. Both pipelines must agree to the byte.
  PatientWriters patient;
  std::string prefix = tmp_prefix("die");
  remove_session(prefix);
  int restarts = record_spill_session(prefix, "drain.die:nth=2");
  EXPECT_GE(restarts, 1);

  std::string err;
  auto streamed = StreamAnalyzer::analyze(prefix, &err);
  ASSERT_TRUE(streamed.has_value()) << err;
  EXPECT_EQ(streamed->save(), reference_bytes(prefix));
  EXPECT_EQ(streamed->stats.entries, kTotalEntries);
  remove_session(prefix);
}

TEST(AnalyzeStream, FaultSeededTornChunkDifferential) {
  // A chunk torn mid-write and rewritten whole on resume: the overwritten
  // sequence must analyze identically through both pipelines.
  PatientWriters patient;
  std::string prefix = tmp_prefix("torn");
  remove_session(prefix);
  int restarts = record_spill_session(prefix, "drain.chunk.torn:nth=2");
  EXPECT_GE(restarts, 1);

  std::string err;
  auto streamed = StreamAnalyzer::analyze(prefix, &err);
  ASSERT_TRUE(streamed.has_value()) << err;
  EXPECT_EQ(streamed->save(), reference_bytes(prefix));
  EXPECT_EQ(streamed->stats.entries, kTotalEntries);
  remove_session(prefix);
}

TEST(AnalyzeStream, TornTrailingChunkParityCorruptMiddleRejectsBoth) {
  PatientWriters patient;
  std::string prefix = tmp_prefix("parity");
  remove_session(prefix);
  record_spill_session(prefix, nullptr);
  u32 chunks = 0;
  while (file_exists(drain::chunk_path(prefix, chunks))) ++chunks;
  ASSERT_GE(chunks, 3u);

  // Truncate the trailing chunk: both pipelines degrade to the surviving
  // prefix — and to the same bytes.
  std::string last_path = drain::chunk_path(prefix, chunks - 1);
  auto last_raw = read_file(last_path);
  ASSERT_TRUE(last_raw.has_value());
  ASSERT_TRUE(write_file(
      last_path, std::string_view(last_raw->data(), last_raw->size() / 2)));
  auto ref = Profile::load(prefix);
  ASSERT_TRUE(ref.has_value());
  std::string err;
  auto streamed = StreamAnalyzer::analyze(prefix, &err);
  ASSERT_TRUE(streamed.has_value()) << err;
  EXPECT_EQ(streamed->save(), MergeableProfile::from_profile(*ref).save());
  EXPECT_LT(streamed->stats.entries, kTotalEntries);  // genuinely degraded

  // A corrupt chunk in the middle rejects through both pipelines.
  ASSERT_TRUE(write_file(last_path, *last_raw));
  std::string mid_path = drain::chunk_path(prefix, 1);
  auto mid_raw = read_file(mid_path);
  ASSERT_TRUE(mid_raw.has_value());
  (*mid_raw)[mid_raw->size() / 2] ^= 0x40;
  ASSERT_TRUE(write_file(mid_path, *mid_raw));
  EXPECT_FALSE(Profile::load(prefix).has_value());
  EXPECT_FALSE(StreamAnalyzer::analyze(prefix).has_value());
  remove_session(prefix);
}

TEST(AnalyzeStream, RejectionParityWithInMemoryLoader) {
  std::string prefix = tmp_prefix("reject");
  remove_session(prefix);

  // Nothing on disk at all.
  EXPECT_EQ(Profile::load(prefix).has_value(),
            StreamAnalyzer::analyze(prefix).has_value());
  EXPECT_FALSE(StreamAnalyzer::analyze(prefix).has_value());

  // A .log that is not a dump.
  ASSERT_TRUE(write_file(prefix + ".log", "this is not a profile dump"));
  EXPECT_EQ(Profile::load(prefix).has_value(),
            StreamAnalyzer::analyze(prefix).has_value());
  EXPECT_FALSE(StreamAnalyzer::analyze(prefix).has_value());
  remove_session(prefix);

  // A lone unparseable chunk with no residue: torn-trailing tolerance has
  // nothing left to analyze — both pipelines must make the same call.
  ASSERT_TRUE(write_file(drain::chunk_path(prefix, 0), "torn"));
  EXPECT_EQ(Profile::load(prefix).has_value(),
            StreamAnalyzer::analyze(prefix).has_value());
  remove_session(prefix);
}

// --------------------------------------------------------- bounded memory

// Synthesizes a spill session far larger than any shm window directly as
// chunk files: per shard one thread running 3-deep nested calls over a
// 16-method rotation, counters and cursors continuous across chunks.
void write_synthetic_session(const std::string& prefix, u32 chunks,
                             u64 per_shard) {
  LogHeader session{};
  session.magic = kLogMagic;
  session.version = kLogVersionSharded;
  constexpr u32 kSynthShards = 2;
  u64 counter[kSynthShards] = {1, 1};
  u64 phase[kSynthShards] = {0, 0};
  u64 cycle[kSynthShards] = {0, 0};
  for (u32 seq = 0; seq < chunks; ++seq) {
    std::vector<drain::ShardWindow> windows(kSynthShards);
    for (u32 s = 0; s < kSynthShards; ++s) {
      windows[s].start = static_cast<u64>(seq) * per_shard;
      windows[s].entries.reserve(per_shard);
      for (u64 i = 0; i < per_shard; ++i) {
        u64 level = phase[s] < 3 ? phase[s] : 5 - phase[s];
        u64 addr = 0x100 * (level + 1) + cycle[s];
        LogEntry e{};
        e.kind_and_counter = LogEntry::pack(
            phase[s] < 3 ? EventKind::kCall : EventKind::kReturn, counter[s]++);
        e.addr = addr;
        e.tid = s;
        windows[s].entries.push_back(e);
        if (++phase[s] == 6) {
          phase[s] = 0;
          cycle[s] = (cycle[s] + 1) % 16;
        }
      }
    }
    ASSERT_TRUE(write_file(drain::chunk_path(prefix, seq),
                           drain::serialize_chunk(session, windows, seq)));
  }
}

TEST(AnalyzeStream, BoundedMemoryOverLargeSyntheticSession) {
  std::string prefix = tmp_prefix("large");
  remove_session(prefix);
  // 160 chunks x 2 shards x 2048 entries = 655,360 entries (~20 MB on
  // disk), hundreds of times any realistic shm window.
  constexpr u32 kChunks = 160;
  constexpr u64 kPerShard = 2048;
  constexpr u64 kSynthTotal = u64{kChunks} * 2 * kPerShard;
  write_synthetic_session(prefix, kChunks, kPerShard);

  u64 peak_before = peak_rss_bytes();
  std::string err;
  auto streamed = StreamAnalyzer::analyze_spill(prefix, &err);
  u64 peak_after = peak_rss_bytes();
  ASSERT_TRUE(streamed.has_value()) << err;
  EXPECT_EQ(streamed->stats.entries, kSynthTotal);
  EXPECT_EQ(streamed->stats.thread_count, 2u);
  EXPECT_EQ(streamed->methods.size(), 3 * 16u);

  // The bounded-memory property: streaming one chunk at a time must never
  // approach the session's size. The in-memory pipeline materializes the
  // stitched streams plus every Invocation (~40+ MB here); the streaming
  // pass holds one chunk and the rolling aggregates.
  ASSERT_GT(peak_before, 0u);
  EXPECT_LT(peak_after, peak_before + (24ull << 20))
      << "streaming analysis peaked " << (peak_after - peak_before)
      << " bytes over baseline for a "
      << (kSynthTotal * sizeof(LogEntry) >> 20) << " MB session";

  // And it is still the exact same aggregate the in-memory loader derives.
  auto ref = Profile::load_spill(prefix);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(streamed->save(), MergeableProfile::from_profile(*ref).save());
  remove_session(prefix);
}

}  // namespace
}  // namespace teeperf
