#!/bin/sh
# End-to-end check of the paper's CLI workflow: teeperf_record launches an
# instrumented application in a child process, communicates over named
# POSIX shared memory, persists <prefix>.log, the child writes <prefix>.sym
# at exit, and teeperf_analyze / teeperf_flamegraph consume the pair.
#
# Usage: cross_process_test.sh <bindir>
set -e
BIN="$1"
OUT=$(mktemp -d /tmp/teeperf_xproc.XXXXXX)
trap 'rm -rf "$OUT"' EXIT

"$BIN/tools/teeperf_record" -o "$OUT/run" -n 262144 -c tsc -- \
    "$BIN/examples/instrumented_app" "$OUT/ignored" > "$OUT/app.out" 2>&1

test -s "$OUT/run.log" || { echo "FAIL: run.log missing/empty"; exit 1; }
test -s "$OUT/run.sym" || { echo "FAIL: run.sym missing/empty"; exit 1; }
grep -q "recorded by wrapper" "$OUT/app.out" || {
  echo "FAIL: app did not detect wrapper session"; cat "$OUT/app.out"; exit 1; }

"$BIN/tools/teeperf_analyze" "$OUT/run" --top 10 --threads \
    --folded "$OUT/run.folded" > "$OUT/analyze.out"
grep -q "fibonacci" "$OUT/analyze.out" || {
  echo "FAIL: fibonacci not symbolized across processes"; cat "$OUT/analyze.out"; exit 1; }
test -s "$OUT/run.folded" || { echo "FAIL: folded output missing"; exit 1; }

"$BIN/tools/teeperf_flamegraph" "$OUT/run.folded" "$OUT/run.svg" --title xproc
grep -q "<svg" "$OUT/run.svg" || { echo "FAIL: svg output invalid"; exit 1; }

# Dynamic-activation path: start inactive, log must stay empty.
"$BIN/tools/teeperf_record" --inactive -o "$OUT/off" -- \
    "$BIN/examples/instrumented_app" "$OUT/ignored2" > /dev/null 2>&1
"$BIN/tools/teeperf_analyze" "$OUT/off" > "$OUT/off.out"
grep -q "entries=0" "$OUT/off.out" || {
  echo "FAIL: inactive session recorded entries"; cat "$OUT/off.out"; exit 1; }

echo "PASS"
