#!/bin/sh
# End-to-end check of the paper's CLI workflow: teeperf_record launches an
# instrumented application in a child process, communicates over named
# POSIX shared memory, persists <prefix>.log, the child writes <prefix>.sym
# at exit, and teeperf_analyze / teeperf_flamegraph consume the pair.
#
# Usage: cross_process_test.sh <bindir>
set -e
BIN="$1"
OUT=$(mktemp -d /tmp/teeperf_xproc.XXXXXX)
trap 'rm -rf "$OUT"' EXIT

# Every session in this run publishes into a private registry dir, so the
# pid/session arguments below resolve through discovery (and concurrent
# CI jobs never see each other's sessions).
TEEPERF_SESSION_DIR="$OUT/sessions"
export TEEPERF_SESSION_DIR

"$BIN/tools/teeperf_record" -o "$OUT/run" -n 262144 -c tsc -- \
    "$BIN/examples/instrumented_app" "$OUT/ignored" > "$OUT/app.out" 2>&1

test -s "$OUT/run.log" || { echo "FAIL: run.log missing/empty"; exit 1; }
test -s "$OUT/run.sym" || { echo "FAIL: run.sym missing/empty"; exit 1; }
grep -q "recorded by wrapper" "$OUT/app.out" || {
  echo "FAIL: app did not detect wrapper session"; cat "$OUT/app.out"; exit 1; }

"$BIN/tools/teeperf_analyze" "$OUT/run" --top 10 --threads \
    --folded "$OUT/run.folded" > "$OUT/analyze.out"
grep -q "fibonacci" "$OUT/analyze.out" || {
  echo "FAIL: fibonacci not symbolized across processes"; cat "$OUT/analyze.out"; exit 1; }
test -s "$OUT/run.folded" || { echo "FAIL: folded output missing"; exit 1; }

"$BIN/tools/teeperf_flamegraph" "$OUT/run.folded" "$OUT/run.svg" --title xproc
grep -q "<svg" "$OUT/run.svg" || { echo "FAIL: svg output invalid"; exit 1; }

# Dynamic-activation path: start inactive, log must stay empty.
"$BIN/tools/teeperf_record" --inactive -o "$OUT/off" -- \
    "$BIN/examples/instrumented_app" "$OUT/ignored2" > /dev/null 2>&1
"$BIN/tools/teeperf_analyze" "$OUT/off" > "$OUT/off.out"
grep -q "entries=0" "$OUT/off.out" || {
  echo "FAIL: inactive session recorded entries"; cat "$OUT/off.out"; exit 1; }

# Self-telemetry sidecars: the first run must have produced a health
# snapshot and an event journal, and the analyzer folds them in.
test -s "$OUT/run.health" || { echo "FAIL: run.health missing"; exit 1; }
test -s "$OUT/run.events.jsonl" || { echo "FAIL: run.events.jsonl missing"; exit 1; }
grep -q "recorder health" "$OUT/analyze.out" || {
  echo "FAIL: analyze output lacks recorder-health section"
  cat "$OUT/analyze.out"; exit 1; }
grep -q '"event":"attach"' "$OUT/run.events.jsonl" || {
  echo "FAIL: no attach event journaled"; cat "$OUT/run.events.jsonl"; exit 1; }

# Live scraping: hold the session open after the child exits and attach
# teeperf_stats to the wrapper's obs region by pid.
"$BIN/tools/teeperf_record" -o "$OUT/live" -c software --hold-ms 4000 -- \
    "$BIN/examples/instrumented_app" "$OUT/ignored3" > /dev/null 2>&1 &
REC_PID=$!
# Retry the attach: under load the wrapper may take a moment to create the
# obs region (and the hold window is 3s).
ATTACHED=0
for attempt in 1 2 3 4 5 6 7 8 9 10; do
  sleep 0.2
  if "$BIN/tools/teeperf_stats" "$REC_PID" > "$OUT/stats.out" 2>&1; then
    if grep -q "app.thread" "$OUT/stats.out"; then ATTACHED=1; break; fi
  fi
done
[ "$ATTACHED" = 1 ] || {
  echo "FAIL: teeperf_stats could not attach to live session"
  cat "$OUT/stats.out"; exit 1; }
# External fault arming (TESTING.md): writing the fault.arm gauge from this
# untrusted scraper must make the session's watchdog freeze its own counter
# and journal the stall — no signal, no restart.
"$BIN/tools/teeperf_stats" "$REC_PID" --arm counter.stall=1 --no-events \
    > /dev/null 2>&1 || { echo "FAIL: --arm against live session failed"; exit 1; }
wait "$REC_PID"
grep -q '"event":"counter_stall"' "$OUT/live.events.jsonl" || {
  echo "FAIL: externally armed counter.stall never surfaced"
  cat "$OUT/live.events.jsonl"; exit 1; }
grep -q "log.tail" "$OUT/stats.out" || {
  echo "FAIL: live scrape missing ring metrics"; cat "$OUT/stats.out"; exit 1; }
TAIL=$(awk '/log.tail/ {print $3}' "$OUT/stats.out")
RATE=$(awk '/log.entry_rate_peak_per_s/ {print $3}' "$OUT/stats.out")
[ "${TAIL:-0}" -gt 0 ] || {
  echo "FAIL: live ring occupancy is zero"; cat "$OUT/stats.out"; exit 1; }
[ "${RATE:-0}" -gt 0 ] || {
  echo "FAIL: live entry rate is zero"; cat "$OUT/stats.out"; exit 1; }

# Watchdog fault injection: freezing the software counter mid-hold must
# surface as a counter_stall event in the journal export and as a warning in
# the analyzer's health section.
"$BIN/tools/teeperf_record" -o "$OUT/stall" -c software \
    --freeze-counter-after-ms 100 --hold-ms 800 -- \
    "$BIN/examples/instrumented_app" "$OUT/ignored4" > /dev/null 2>&1
grep -q '"event":"counter_stall"' "$OUT/stall.events.jsonl" || {
  echo "FAIL: frozen counter produced no stall event"
  cat "$OUT/stall.events.jsonl"; exit 1; }
"$BIN/tools/teeperf_analyze" "$OUT/stall" > "$OUT/stall.out"
grep -q "WARNING: counter_stall" "$OUT/stall.out" || {
  echo "FAIL: analyze health section lacks stall warning"
  cat "$OUT/stall.out"; exit 1; }

# Negative paths: a truncated dump must fail analysis loudly (non-zero
# exit, diagnostic), and a bad --faults spec must be a usage error.
head -c 64 "$OUT/run.log" > "$OUT/trunc.log"
if "$BIN/tools/teeperf_analyze" "$OUT/trunc" > "$OUT/trunc.out" 2>&1; then
  echo "FAIL: analyze accepted a sub-header dump"; exit 1
fi
grep -q "cannot load" "$OUT/trunc.out" || {
  echo "FAIL: truncated-dump failure lacks diagnostic"; cat "$OUT/trunc.out"; exit 1; }
if "$BIN/tools/teeperf_record" --faults "nonsense:nth=" -- true \
    > "$OUT/badfault.out" 2>&1; then
  echo "FAIL: record accepted malformed --faults"; exit 1
fi
grep -q "bad --faults" "$OUT/badfault.out" || {
  echo "FAIL: bad --faults lacks diagnostic"; cat "$OUT/badfault.out"; exit 1; }

# Fault injection end to end: arm the child's append path so it dies
# mid-run; the wrapper still persists a dump whose valid prefix analyzes,
# and the reconstruction summary reports the torn tail as a tombstone.
if "$BIN/tools/teeperf_record" -o "$OUT/die" -c steady_clock \
    --faults "log.append.die:nth=40" --fault-seed 3 -- \
    "$BIN/examples/instrumented_app" "$OUT/ignored5" > /dev/null 2>&1; then
  echo "FAIL: record exited 0 despite SIGKILLed child"; exit 1
fi
test -s "$OUT/die.log" || { echo "FAIL: die.log missing after fault run"; exit 1; }
"$BIN/tools/teeperf_analyze" "$OUT/die" --validate > "$OUT/die.out" || {
  echo "FAIL: analyze rejected fault-run dump"; cat "$OUT/die.out"; exit 1; }

# Spill-drain end to end (DESIGN.md §10): a session several times the shm
# capacity streams through the live drainer — with the drainer killed
# mid-run by fault injection. The wrapper must restart it, resume must be
# exact (chunks persist before the cursor advances), and the analyzer must
# stitch chunks + residue into one lossless profile.
mkdir -p "$OUT/sp"
"$BIN/tools/teeperf_record" -o "$OUT/sp/run" -n 4096 -c tsc \
    --spill "$OUT/sp" --spill-chunk-entries 512 \
    --faults "drain.die:nth=2" --fault-seed 1 -- \
    "$BIN/examples/instrumented_app" "$OUT/ignored6" > "$OUT/spill.out" 2>&1 || {
  echo "FAIL: spill-drain record run failed"; cat "$OUT/spill.out"; exit 1; }
grep -q "drainer died; resuming" "$OUT/spill.out" || {
  echo "FAIL: injected drainer death never restarted"; cat "$OUT/spill.out"; exit 1; }
grep -q "spilled" "$OUT/spill.out" || {
  echo "FAIL: spill session reported no spill summary"; cat "$OUT/spill.out"; exit 1; }
test -s "$OUT/sp/run.seg.0000" || { echo "FAIL: no chunk files persisted"; exit 1; }
"$BIN/tools/teeperf_analyze" "$OUT/sp/run" --top 5 > "$OUT/spill_analyze.out" || {
  echo "FAIL: analyze rejected spill session"; cat "$OUT/spill_analyze.out"; exit 1; }
grep -q "fibonacci" "$OUT/spill_analyze.out" || {
  echo "FAIL: spill session lost symbolization"; cat "$OUT/spill_analyze.out"; exit 1; }
# Lossless: every attempted entry analyzed (no drops, no torn slots), and
# the session really overran the in-memory window more than 4x.
ATTEMPTED=$(sed -n 's/.*(\([0-9][0-9]*\) attempted).*/\1/p' "$OUT/spill.out" | head -1)
ENTRIES=$(sed -n 's/.*entries=\([0-9][0-9]*\).*/\1/p' "$OUT/spill_analyze.out" | head -1)
TOMB=$(sed -n 's/.*tombstones=\([0-9][0-9]*\).*/\1/p' "$OUT/spill_analyze.out" | head -1)
[ "${ENTRIES:-0}" -gt 16384 ] || {
  echo "FAIL: spill session entries=$ENTRIES did not exceed 4x the shm window"
  cat "$OUT/spill_analyze.out"; exit 1; }
[ "${ENTRIES:-0}" -eq "${ATTEMPTED:-1}" ] || {
  echo "FAIL: spill session dropped entries ($ENTRIES analyzed of $ATTEMPTED attempted)"
  cat "$OUT/spill.out" "$OUT/spill_analyze.out"; exit 1; }
[ "${TOMB:-1}" -eq 0 ] || {
  echo "FAIL: spill session analyzed with tombstones=$TOMB"
  cat "$OUT/spill_analyze.out"; exit 1; }
# And the two reclaim policies stay mutually exclusive at the CLI.
if "$BIN/tools/teeperf_record" --spill "$OUT/sp" --ring -- true \
    > "$OUT/spillring.out" 2>&1; then
  echo "FAIL: record accepted --spill with --ring"; exit 1
fi

# Fleet-monitoring daemon e2e (DESIGN.md §11): one teeperf_monitord
# discovers three concurrent recorded apps through the session registry,
# serves all three on /metrics with {session,pid} labels, drops a session
# after its app exits, serves flame graphs — and dying mid-scrape must
# never wedge the recorded apps.
"$BIN/tools/teeperf_monitord" --listen 127.0.0.1:0 --port-file "$OUT/mon.port" \
    --poll-ms 100 --gc-interval-ms 500 --flame-interval-ms 200 \
    > "$OUT/mon.err" 2>&1 &
MON_PID=$!
for attempt in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  [ -s "$OUT/mon.port" ] && break
  sleep 0.1
done
[ -s "$OUT/mon.port" ] || {
  echo "FAIL: monitord never wrote its port file"; cat "$OUT/mon.err"; exit 1; }
MON_PORT=$(cat "$OUT/mon.port")
MON_URL="http://127.0.0.1:$MON_PORT"

"$BIN/tools/teeperf_monitord" --get "$MON_URL/healthz" > "$OUT/healthz.out" || {
  echo "FAIL: monitord /healthz not ok"; cat "$OUT/mon.err"; exit 1; }

"$BIN/tools/teeperf_record" -o "$OUT/fleet1" --hold-ms 8000 -- \
    "$BIN/examples/instrumented_app" "$OUT/ig_f1" > /dev/null 2>&1 &
F1=$!
"$BIN/tools/teeperf_record" -o "$OUT/fleet2" --hold-ms 8000 -- \
    "$BIN/examples/instrumented_app" "$OUT/ig_f2" > /dev/null 2>&1 &
F2=$!
"$BIN/tools/teeperf_record" -o "$OUT/fleet3" --hold-ms 1500 -- \
    "$BIN/examples/instrumented_app" "$OUT/ig_f3" > /dev/null 2>&1 &
F3=$!

# All three sessions must appear on /metrics, labeled by wrapper pid.
FLEET=0
for attempt in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 \
               21 22 23 24 25 26 27 28 29 30; do
  sleep 0.2
  "$BIN/tools/teeperf_monitord" --get "$MON_URL/metrics" \
      > "$OUT/fleet.scrape" 2>/dev/null || continue
  if grep -q "pid=\"$F1\"" "$OUT/fleet.scrape" &&
     grep -q "pid=\"$F2\"" "$OUT/fleet.scrape" &&
     grep -q "pid=\"$F3\"" "$OUT/fleet.scrape"; then FLEET=1; break; fi
done
[ "$FLEET" = 1 ] || {
  echo "FAIL: /metrics never showed all three fleet sessions"
  cat "$OUT/fleet.scrape"; exit 1; }
NSESS=$(grep -o 'session="teeperf\.[^"]*"' "$OUT/fleet.scrape" | sort -u | wc -l)
[ "$NSESS" -ge 3 ] || {
  echo "FAIL: expected >=3 distinct session labels, got $NSESS"
  cat "$OUT/fleet.scrape"; exit 1; }
grep -q "# TYPE teeperf_log_tail gauge" "$OUT/fleet.scrape" || {
  echo "FAIL: scrape lacks TYPE line for log.tail"; cat "$OUT/fleet.scrape"; exit 1; }
grep -q "teeperf_monitord_scrapes" "$OUT/fleet.scrape" || {
  echo "FAIL: scrape lacks daemon self-metrics"; cat "$OUT/fleet.scrape"; exit 1; }

# The registry CLI view agrees: three live sessions.
"$BIN/tools/teeperf_stats" --list > "$OUT/list.out"
NLIVE=$(grep -c " live " "$OUT/list.out" || true)
[ "$NLIVE" -ge 3 ] || {
  echo "FAIL: teeperf_stats --list shows $NLIVE live sessions, want >=3"
  cat "$OUT/list.out"; exit 1; }

# Rolling flame graph for one attached session.
FLEET_SES=$(grep -o 'session="teeperf\.[^"]*"' "$OUT/fleet.scrape" \
    | head -1 | sed 's/session="//; s/"//')
"$BIN/tools/teeperf_monitord" --get "$MON_URL/flamegraph/$FLEET_SES" \
    > "$OUT/fleet.folded" || {
  echo "FAIL: /flamegraph/$FLEET_SES not served"; cat "$OUT/mon.err"; exit 1; }

# The short-hold app exits; its series must disappear within a poll cycle.
wait "$F3"
GONE=0
for attempt in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  sleep 0.2
  "$BIN/tools/teeperf_monitord" --get "$MON_URL/metrics" \
      > "$OUT/fleet2.scrape" 2>/dev/null || continue
  if ! grep -q "pid=\"$F3\"" "$OUT/fleet2.scrape"; then GONE=1; break; fi
done
[ "$GONE" = 1 ] || {
  echo "FAIL: exited session pid=$F3 still exported"; cat "$OUT/fleet2.scrape"; exit 1; }

# Kill the daemon mid-scrape: the recorded apps must finish untouched.
"$BIN/tools/teeperf_monitord" --get "$MON_URL/metrics" > /dev/null 2>&1 &
SCRAPER=$!
kill -9 "$MON_PID" 2>/dev/null
wait "$SCRAPER" 2>/dev/null || true
wait "$MON_PID" 2>/dev/null || true
wait "$F1" || { echo "FAIL: fleet app 1 wedged by daemon death"; exit 1; }
wait "$F2" || { echo "FAIL: fleet app 2 wedged by daemon death"; exit 1; }
test -s "$OUT/fleet1.log" || { echo "FAIL: fleet1.log missing"; exit 1; }
test -s "$OUT/fleet2.log" || { echo "FAIL: fleet2.log missing"; exit 1; }
"$BIN/tools/teeperf_analyze" "$OUT/fleet1" --top 3 > /dev/null || {
  echo "FAIL: fleet1 dump does not analyze"; exit 1; }

# Clean exits withdrew their descriptors: nothing left to discover.
"$BIN/tools/teeperf_stats" --list > "$OUT/list2.out"
if grep -q " live " "$OUT/list2.out"; then
  echo "FAIL: live sessions remain after all apps exited"
  cat "$OUT/list2.out"; exit 1
fi

echo "PASS"
