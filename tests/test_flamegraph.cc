// Tests for stage #4: folded-stack format round trips, frame-tree merging,
// fraction queries and the SVG renderer.
#include <gtest/gtest.h>

#include "flamegraph/flamegraph.h"

#include <vector>

#include "core/log_format.h"

namespace teeperf::flamegraph {
namespace {

FoldedStacks sample() {
  return {
      {"main;io;read", 30},
      {"main;io;write", 10},
      {"main;compute", 60},
  };
}

TEST(Folded, TextFormat) {
  std::string text = to_folded_text(sample());
  EXPECT_EQ(text, "main;io;read 30\nmain;io;write 10\nmain;compute 60\n");
}

TEST(Folded, ParseRoundTrip) {
  auto parsed = parse_folded_text(to_folded_text(sample()));
  EXPECT_EQ(parsed, sample());
}

TEST(Folded, ParseSkipsGarbage) {
  auto parsed = parse_folded_text("ok 5\nno_value\nbad nan\n x 7\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].first, "ok");
  EXPECT_EQ(parsed[1].second, 7u);
}

TEST(FrameTree, MergesCommonPrefixes) {
  Frame root = build_frame_tree(sample());
  EXPECT_EQ(root.value, 100u);
  ASSERT_EQ(root.children.size(), 1u);
  const Frame& main_f = root.children[0];
  EXPECT_EQ(main_f.name, "main");
  EXPECT_EQ(main_f.value, 100u);
  ASSERT_EQ(main_f.children.size(), 2u);  // compute, io — sorted by name
  EXPECT_EQ(main_f.children[0].name, "compute");
  EXPECT_EQ(main_f.children[0].self, 60u);
  EXPECT_EQ(main_f.children[1].name, "io");
  EXPECT_EQ(main_f.children[1].value, 40u);
  EXPECT_EQ(main_f.children[1].self, 0u);
}

TEST(FrameTree, FindFrame) {
  Frame root = build_frame_tree(sample());
  const Frame* io = find_frame(root, "io");
  ASSERT_NE(io, nullptr);
  EXPECT_EQ(io->value, 40u);
  EXPECT_EQ(find_frame(root, "missing"), nullptr);
}

TEST(FrameTree, FrameFraction) {
  Frame root = build_frame_tree(sample());
  EXPECT_DOUBLE_EQ(frame_fraction(root, "io"), 0.4);
  EXPECT_DOUBLE_EQ(frame_fraction(root, "compute"), 0.6);
  EXPECT_DOUBLE_EQ(frame_fraction(root, "main"), 1.0);
  EXPECT_DOUBLE_EQ(frame_fraction(root, "nothing"), 0.0);
}

TEST(FrameTree, RepeatedFrameNameSummed) {
  FoldedStacks stacks{{"a;hot", 10}, {"b;hot", 20}, {"b;cold", 70}};
  Frame root = build_frame_tree(stacks);
  EXPECT_DOUBLE_EQ(frame_fraction(root, "hot"), 0.3);
}

TEST(FrameTree, EmptyInput) {
  Frame root = build_frame_tree({});
  EXPECT_EQ(root.value, 0u);
  EXPECT_TRUE(root.children.empty());
  EXPECT_DOUBLE_EQ(frame_fraction(root, "x"), 0.0);
}

TEST(Svg, ContainsFramesAndTitle) {
  SvgOptions opt;
  opt.title = "Unit Flame";
  std::string svg = render_svg(sample(), opt);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Unit Flame"), std::string::npos);
  EXPECT_NE(svg.find("compute"), std::string::npos);
  EXPECT_NE(svg.find("30 ticks"), std::string::npos);  // tooltip
}

TEST(Svg, EscapesXml) {
  FoldedStacks stacks{{"operator<<;a<b>&c", 10}};
  std::string svg = render_svg(stacks);
  EXPECT_EQ(svg.find("a<b>"), std::string::npos);
  EXPECT_NE(svg.find("&lt;"), std::string::npos);
  EXPECT_NE(svg.find("&amp;"), std::string::npos);
}

TEST(Svg, DeterministicOutput) {
  EXPECT_EQ(render_svg(sample()), render_svg(sample()));
  // Input order must not matter (children sorted by name).
  FoldedStacks stacks = sample();
  FoldedStacks reversed(stacks.rbegin(), stacks.rend());
  EXPECT_EQ(render_svg(stacks), render_svg(reversed));
}

TEST(Svg, EmptyStacksStillValidDocument) {
  std::string svg = render_svg({});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, DropsSubPixelFrames) {
  FoldedStacks stacks{{"wide", 1'000'000}, {"tiny", 1}};
  SvgOptions opt;
  opt.width = 1000;  // "tiny" is 0.001 px
  std::string svg = render_svg(stacks, opt);
  EXPECT_NE(svg.find("wide"), std::string::npos);
  EXPECT_EQ(svg.find("tiny"), std::string::npos);
}

// --- timeline renderer ---------------------------------------------------------

analyzer::Profile two_thread_profile() {
  static std::vector<u8> buf(ProfileLog::bytes_for(64));
  ProfileLog log;
  log.init(buf.data(), buf.size(), 1, log_flags::kActive);
  log.append(EventKind::kCall, 0x1, 0, 0);
  log.append(EventKind::kCall, 0x2, 0, 10);
  log.append(EventKind::kReturn, 0x2, 0, 60);
  log.append(EventKind::kReturn, 0x1, 0, 100);
  log.append(EventKind::kCall, 0x3, 1, 20);
  log.append(EventKind::kReturn, 0x3, 1, 90);
  return analyzer::Profile::from_log(
      log, {{0x1, "tmain"}, {0x2, "tchild<x>"}, {0x3, "tworker"}}, 1.0);
}

TEST(Timeline, RendersLanesPerThread) {
  auto profile = two_thread_profile();
  std::string svg = render_timeline_svg(profile, {.title = "tl test"});
  EXPECT_NE(svg.find("tid 0"), std::string::npos);
  EXPECT_NE(svg.find("tid 1"), std::string::npos);
  EXPECT_NE(svg.find("tmain"), std::string::npos);
  EXPECT_NE(svg.find("tworker"), std::string::npos);
  EXPECT_NE(svg.find("tl test"), std::string::npos);
}

TEST(Timeline, EscapesNames) {
  auto profile = two_thread_profile();
  std::string svg = render_timeline_svg(profile);
  EXPECT_EQ(svg.find("tchild<x>"), std::string::npos);
  EXPECT_NE(svg.find("tchild&lt;x&gt;"), std::string::npos);
}

TEST(Timeline, EmptyProfileValidSvg) {
  analyzer::Profile empty;
  std::string svg = render_timeline_svg(empty);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace teeperf::flamegraph
