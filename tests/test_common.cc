// Unit tests for src/common: crc32c, rng, string utilities, histogram,
// spin calibration, file helpers.
#include <gtest/gtest.h>

#include <set>

#include "common/crc32c.h"
#include "common/fileutil.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/spin.h"
#include "common/stringutil.h"
#include "bench/bench_util.h"

namespace teeperf {
namespace {

// --- crc32c -----------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vectors for CRC-32C.
  u8 zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, 32), 0x8a9136aau);

  u8 ones[32];
  std::fill(std::begin(ones), std::end(ones), 0xff);
  EXPECT_EQ(crc32c(ones, 32), 0x62a8ab43u);

  u8 inc[32];
  for (int i = 0; i < 32; ++i) inc[i] = static_cast<u8>(i);
  EXPECT_EQ(crc32c(inc, 32), 0x46dd794eu);
}

TEST(Crc32c, ExtendMatchesWholeBuffer) {
  const char* data = "hello, trusted world";
  usize n = 20;
  u32 whole = crc32c(data, n);
  u32 split = crc32c_extend(crc32c(data, 7), data + 7, n - 7);
  EXPECT_EQ(whole, split);
}

TEST(Crc32c, MaskRoundTrip) {
  for (u32 v : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(crc32c_unmask(crc32c_mask(v)), v);
    EXPECT_NE(crc32c_mask(v), v);  // masking must change the value
  }
}

TEST(Crc32c, EmptyInput) { EXPECT_EQ(crc32c(nullptr, 0), 0u); }

// --- rng ---------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Xorshift64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xorshift64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedDoesNotStick) {
  Xorshift64 r(0);
  EXPECT_NE(r.next(), 0u);
  EXPECT_NE(r.next(), r.next());
}

TEST(Rng, NextBelowInRange) {
  Xorshift64 r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
  Xorshift64 r(4);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformishBuckets) {
  Xorshift64 r(5);
  int buckets[10] = {};
  for (int i = 0; i < 100000; ++i) ++buckets[r.next_below(10)];
  for (int b : buckets) {
    EXPECT_GT(b, 8500);
    EXPECT_LT(b, 11500);
  }
}

TEST(Rng, WordHasRequestedLength) {
  Xorshift64 r(6);
  for (usize len : {1u, 5u, 30u}) {
    std::string w = r.next_word(len);
    EXPECT_EQ(w.size(), len);
    for (char c : w) EXPECT_TRUE(c >= 'a' && c <= 'z');
  }
}

TEST(Rng, SkewedPickerStaysInRange) {
  SkewedPicker p(100, 2.0, 9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(p.next(), 100u);
}

TEST(Rng, SkewedPickerActuallySkews) {
  SkewedPicker skewed(1000, 3.0, 11);
  u64 low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (skewed.next() < 100) ++low;
  }
  // With skew 3, far more than the uniform 10% land in the lowest decile.
  EXPECT_GT(low, 2500u);
}

// --- stringutil ----------------------------------------------------------------

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0.0 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KiB");
  EXPECT_EQ(human_bytes(874.0 * 1024 * 1024), "874.0 MiB");
}

TEST(StringUtil, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(223808), "223,808");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(StringUtil, Split) {
  auto parts = split("a;b;;c", ';');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, SplitEmpty) {
  auto parts = split("", ';');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("teeperf.log", "teeperf"));
  EXPECT_FALSE(starts_with("tee", "teeperf"));
  EXPECT_TRUE(ends_with("run.sym", ".sym"));
  EXPECT_FALSE(ends_with("sym", ".sym"));
}

TEST(StringUtil, Ellipsize) {
  EXPECT_EQ(ellipsize("short", 10), "short");
  EXPECT_EQ(ellipsize("averylongname", 6), "aver..");
}

TEST(StringUtil, Format) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_format("%s", ""), "");
}

// --- histogram -------------------------------------------------------------------

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(Histogram, BasicStats) {
  LatencyHistogram h;
  for (u64 v : {10ull, 20ull, 30ull, 40ull}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(Histogram, PercentilesOrdered) {
  LatencyHistogram h;
  Xorshift64 r(1);
  for (int i = 0; i < 10000; ++i) h.add(r.next_below(100000));
  double p50 = h.percentile(50), p90 = h.percentile(90), p99 = h.percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  EXPECT_GE(p50, static_cast<double>(h.min()));
}

TEST(Histogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.add(5);
  a.add(10);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.min(), 5u);
}

TEST(Histogram, ZeroValue) {
  LatencyHistogram h;
  h.add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
}

// --- spin ---------------------------------------------------------------------

TEST(Spin, CalibrationPositive) { EXPECT_GT(spin_iters_per_us(), 0.0); }

TEST(Spin, SpinRoughlyHonorsDuration) {
  // Generous bounds: single-core CI machines get preempted.
  u64 t0 = monotonic_ns();
  spin_for_ns(2'000'000);
  u64 elapsed = monotonic_ns() - t0;
  EXPECT_GE(elapsed, 500'000u);  // at least 25% of the request
}

TEST(Spin, ZeroIsInstant) {
  u64 t0 = monotonic_ns();
  spin_for_ns(0);
  EXPECT_LT(monotonic_ns() - t0, 1'000'000u);
}

TEST(Spin, MonotonicClockAdvances) {
  u64 a = monotonic_ns();
  u64 b = monotonic_ns();
  EXPECT_GE(b, a);
}

// --- fileutil -----------------------------------------------------------------

class FileUtilTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = make_temp_dir("teeperf_fut_"); }
  void TearDown() override { remove_tree(dir_); }
  std::string dir_;
};

TEST_F(FileUtilTest, WriteReadRoundTrip) {
  std::string path = dir_ + "/a.bin";
  std::string data = "hello\0world";
  data.push_back('\0');
  ASSERT_TRUE(write_file(path, data));
  auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST_F(FileUtilTest, ReadMissingFile) {
  EXPECT_FALSE(read_file(dir_ + "/nope").has_value());
}

TEST_F(FileUtilTest, AppendAccumulates) {
  std::string path = dir_ + "/log";
  ASSERT_TRUE(append_file(path, "ab"));
  ASSERT_TRUE(append_file(path, "cd"));
  EXPECT_EQ(*read_file(path), "abcd");
}

TEST_F(FileUtilTest, ExistsAndRemove) {
  std::string path = dir_ + "/f";
  EXPECT_FALSE(file_exists(path));
  ASSERT_TRUE(write_file(path, "x"));
  EXPECT_TRUE(file_exists(path));
  EXPECT_TRUE(remove_file(path));
  EXPECT_FALSE(file_exists(path));
}

TEST_F(FileUtilTest, MakeDirsNested) {
  std::string nested = dir_ + "/a/b/c";
  EXPECT_TRUE(make_dirs(nested));
  EXPECT_TRUE(write_file(nested + "/f", "x"));
}

TEST_F(FileUtilTest, TempDirsUnique) {
  std::string a = make_temp_dir("teeperf_u_");
  std::string b = make_temp_dir("teeperf_u_");
  EXPECT_NE(a, b);
  remove_tree(a);
  remove_tree(b);
}

// --- bench harness helpers ------------------------------------------------------

TEST(BenchUtil, Geomean) {
  EXPECT_DOUBLE_EQ(benchharness::geomean({}), 0.0);
  EXPECT_NEAR(benchharness::geomean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(benchharness::geomean({1.9, 1.9, 1.9}), 1.9, 1e-9);
}

TEST(BenchUtil, MinOf) {
  EXPECT_DOUBLE_EQ(benchharness::min_of({}), 0.0);
  EXPECT_DOUBLE_EQ(benchharness::min_of({3.0, 1.5, 2.0}), 1.5);
}

TEST(BenchUtil, EnvKnobs) {
  setenv("TEEPERF_REPEATS", "7", 1);
  EXPECT_EQ(benchharness::repeats(3), 7u);
  setenv("TEEPERF_REPEATS", "garbage", 1);
  EXPECT_EQ(benchharness::repeats(3), 3u);
  unsetenv("TEEPERF_REPEATS");
  EXPECT_EQ(benchharness::repeats(3), 3u);

  setenv("TEEPERF_SCALE", "4", 1);
  EXPECT_EQ(benchharness::scale(1), 4u);
  unsetenv("TEEPERF_SCALE");
}

}  // namespace
}  // namespace teeperf
