// Multithread stress for the v2 sharded/batched hot path (TESTING.md):
// 8 threads drive 100k nested calls each through the real probe path —
// runtime::on_enter / on_exit, exactly what -finstrument-functions invokes —
// into a Recorder with an 8-shard log. Asserts the lock-free invariants the
// design claims: zero lost entries, per-thread call/return balance and
// nesting sanity, per-thread counter monotonicity within each shard, and no
// torn slots. Run under ASan/UBSan and TSan in CI (the sanitize jobs build
// the whole tree instrumented).
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/recorder.h"
#include "core/runtime.h"

namespace teeperf {
namespace {

constexpr int kThreads = 8;
constexpr u64 kCallsPerThread = 100'000;
constexpr int kDepth = 4;  // each "call" is one enter+exit pair, nested

TEST(ShardedStress, EightThreadsNoLossBalancedMonotonic) {
  RecorderOptions opts;
  opts.max_entries = 1ull << 21;  // 2M entries > 8 threads * 200k events
  opts.shards = kThreads;
  opts.counter_mode = CounterMode::kSteadyClock;
  opts.telemetry = false;
  auto rec = Recorder::create(opts);
  ASSERT_TRUE(rec);
  ASSERT_TRUE(rec->attach());
  ASSERT_EQ(rec->log().shard_count(), static_cast<u32>(kThreads));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      // Nested call pattern: enter kDepth fake functions, exit them, so the
      // reconstruction sees real stacks, not a flat event list. Addresses
      // are per-thread so cross-thread mixups would surface as imbalance.
      const u64 base = 0x10000ull * static_cast<u64>(t + 1);
      for (u64 i = 0; i < kCallsPerThread / kDepth; ++i) {
        for (int d = 0; d < kDepth; ++d) runtime::on_enter(base + d);
        for (int d = kDepth; d-- > 0;) runtime::on_exit(base + d);
      }
    });
  }
  for (auto& t : threads) t.join();
  rec->detach();

  const u64 expected = static_cast<u64>(kThreads) * kCallsPerThread * 2;
  Recorder::Stats stats = rec->stats();
  EXPECT_EQ(stats.entries, expected) << "lost entries";
  EXPECT_EQ(stats.attempted, expected);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.torn_tail, 0u);
  EXPECT_EQ(stats.shards, static_cast<u32>(kThreads));

  // Per-shard: tails only ever grew into their own segment (no shard ran
  // past capacity), and within a shard each thread's counters are strictly
  // ordered — the per-thread order guarantee the analyzer depends on.
  const ProfileLog& log = rec->log();
  u64 tail_sum = 0;
  for (u32 s = 0; s < log.shard_count(); ++s) {
    const LogShard* sh = log.shard(s);
    ASSERT_NE(sh, nullptr);
    u64 tail = sh->tail.load(std::memory_order_acquire);
    EXPECT_LE(tail, sh->capacity) << "shard " << s << " overflowed";
    EXPECT_EQ(sh->dropped.load(std::memory_order_relaxed), 0u);
    tail_sum += tail;

    std::vector<LogEntry> window;
    log.shard_snapshot(s, &window);
    ASSERT_EQ(window.size(), tail);
    std::map<u64, u64> last_counter;
    std::map<u64, i64> depth;
    for (const LogEntry& e : window) {
      EXPECT_EQ(log.shard_of(e.tid), s) << "entry landed in a foreign shard";
      auto it = last_counter.find(e.tid);
      if (it != last_counter.end()) {
        EXPECT_GE(e.counter(), it->second)
            << "counter went backwards within shard " << s;
      }
      last_counter[e.tid] = e.counter();
      depth[e.tid] += e.kind() == EventKind::kCall ? 1 : -1;
      EXPECT_GE(depth[e.tid], 0) << "return before call for tid " << e.tid;
      EXPECT_LE(depth[e.tid], kDepth);
    }
    for (const auto& [tid, d] : depth) {
      EXPECT_EQ(d, 0) << "unbalanced calls/returns for tid " << tid;
    }
  }
  EXPECT_EQ(tail_sum, expected);

  // Every thread contributed exactly its share.
  std::vector<LogEntry> all;
  log.snapshot_ordered(&all);
  ASSERT_EQ(all.size(), expected);
  std::map<u64, u64> per_tid;
  for (const LogEntry& e : all) ++per_tid[e.tid];
  EXPECT_EQ(per_tid.size(), static_cast<usize>(kThreads));
  for (const auto& [tid, n] : per_tid) {
    EXPECT_EQ(n, kCallsPerThread * 2) << "tid " << tid;
  }
}

TEST(ShardedStress, ConcurrentBatchesOnOneShard) {
  // Worst case for the batched reservation: more threads than shards, so
  // flushes from different threads interleave on the same tail. Entries may
  // interleave at batch granularity, but none may be lost or torn.
  std::vector<u8> buf(ProfileLog::bytes_for(1 << 18, 2));
  ProfileLog log;
  ASSERT_TRUE(log.init(buf.data(), buf.size(), 1,
                       log_flags::kActive | log_flags::kMultithread, 2));
  constexpr int kWriters = 8;
  constexpr u64 kPerWriter = 20'000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      LogBatch batch;
      u64 tid = static_cast<u64>(w);
      for (u64 i = 0; i < kPerWriter; ++i) {
        ASSERT_TRUE(batch.record(log, i % 2 ? EventKind::kReturn : EventKind::kCall,
                                 0x5000 + tid, tid, i + 1));
      }
      ASSERT_TRUE(batch.flush(log));
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(log.size(), kWriters * kPerWriter);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.count_torn_tail(~0ull), 0u);
  // Per-writer sequence order survives concurrent flushing to shared tails.
  std::vector<LogEntry> all;
  log.snapshot_ordered(&all);
  std::map<u64, u64> last;
  for (const LogEntry& e : all) {
    auto it = last.find(e.tid);
    if (it != last.end()) {
      EXPECT_GT(e.counter(), it->second);
    }
    last[e.tid] = e.counter();
  }
}

}  // namespace
}  // namespace teeperf
