// Tests for the TEE simulator: world tracking, transition/OCALL costs and
// counters, syscall/rdtsc trapping, EPC paging, MEE charges.
#include <gtest/gtest.h>

#include <thread>

#include "common/spin.h"
#include "tee/enclave.h"
#include "tee/epc.h"
#include "tee/sysapi.h"

namespace teeperf::tee {
namespace {

TEST(Enclave, WorldFlagTracksEcall) {
  Enclave e(CostModel::zero());
  EXPECT_FALSE(Enclave::inside());
  e.ecall([&] {
    EXPECT_TRUE(Enclave::inside());
    EXPECT_EQ(Enclave::current(), &e);
  });
  EXPECT_FALSE(Enclave::inside());
  EXPECT_EQ(Enclave::current(), nullptr);
}

TEST(Enclave, EcallReturnsValue) {
  Enclave e(CostModel::zero());
  int v = e.ecall([] { return 41 + 1; });
  EXPECT_EQ(v, 42);
}

TEST(Enclave, OcallLeavesAndReenters) {
  Enclave e(CostModel::zero());
  e.ecall([&] {
    EXPECT_TRUE(Enclave::inside());
    int out = e.ocall([] {
      EXPECT_FALSE(Enclave::inside());
      return 7;
    });
    EXPECT_EQ(out, 7);
    EXPECT_TRUE(Enclave::inside());
  });
  EXPECT_EQ(e.counters().ocalls.load(), 1u);
}

TEST(Enclave, OcallOutsideIsFreePassthrough) {
  Enclave e;
  int out = e.ocall([] { return 3; });
  EXPECT_EQ(out, 3);
  EXPECT_EQ(e.counters().ocalls.load(), 0u);
}

TEST(Enclave, TransitionsChargeRealTime) {
  CostModel cm = CostModel::zero();
  cm.ecall_ns = 200'000;
  cm.eexit_ns = 200'000;
  Enclave e(cm);
  u64 t0 = monotonic_ns();
  e.ecall([] {});
  u64 elapsed = monotonic_ns() - t0;
  EXPECT_GE(elapsed, 150'000u);  // generous: preemption tolerance
  EXPECT_EQ(e.counters().ecalls.load(), 1u);
  EXPECT_GE(e.charged_ns(), 400'000u);
}

TEST(Enclave, NestedEcallsRestorePreviousWorld) {
  Enclave outer(CostModel::zero());
  Enclave inner(CostModel::zero());
  outer.ecall([&] {
    inner.ecall([&] { EXPECT_EQ(Enclave::current(), &inner); });
    EXPECT_EQ(Enclave::current(), &outer);
  });
}

TEST(Enclave, WorldFlagIsPerThread) {
  Enclave e(CostModel::zero());
  e.ecall([&] {
    std::thread other([] { EXPECT_FALSE(Enclave::inside()); });
    other.join();
  });
}

TEST(Enclave, MeeChargeScalesWithBytes) {
  CostModel cm = CostModel::zero();
  cm.mee_cacheline_ns = 100;
  Enclave e(cm);
  e.ecall([&] {
    u64 before = e.charged_ns();
    e.charge_mee(64 * 100, /*random=*/true);  // 100 lines
    EXPECT_GE(e.charged_ns() - before, 100u * 100u);
  });
  u64 mid = e.charged_ns();
  e.ecall([&] { e.charge_mee(64 * 800, /*random=*/false); });  // sequential: /8
  // Sequential pays ~1/8 per line: 800 lines → 100 charged units.
  EXPECT_GE(e.charged_ns() - mid, 100u * 100u);
  EXPECT_LT(e.charged_ns() - mid, 100u * 300u + 2 * 0);  // far below 800 lines
}

// --- sysapi -----------------------------------------------------------------

TEST(SysApi, GetpidOutsideIsUntrapped) {
  auto& counts = sys::thread_trap_counts();
  u64 before = counts.getpid;
  u64 pid = sys::getpid();
  EXPECT_GT(pid, 0u);
  EXPECT_EQ(counts.getpid, before + 1);
}

TEST(SysApi, SyscallsTrappedInsideEnclave) {
  CostModel cm = CostModel::zero();
  cm.syscall_ocall_ns = 50'000;
  Enclave e(cm);
  u64 before_traps = e.counters().trapped_syscalls.load();
  u64 t0 = monotonic_ns();
  e.ecall([] {
    sys::getpid();
    sys::clock_gettime_ns();
  });
  u64 elapsed = monotonic_ns() - t0;
  EXPECT_EQ(e.counters().trapped_syscalls.load(), before_traps + 2);
  EXPECT_GE(elapsed, 70'000u);  // two 50 µs traps, preemption-tolerant bound
}

TEST(SysApi, RdtscTrappedInsideOnly) {
  CostModel cm = CostModel::zero();
  cm.rdtsc_trap_ns = 10'000;
  Enclave e(cm);
  sys::rdtsc();  // outside: no trap
  EXPECT_EQ(e.counters().rdtsc_traps.load(), 0u);
  e.ecall([] { sys::rdtsc(); });
  EXPECT_EQ(e.counters().rdtsc_traps.load(), 1u);
}

TEST(SysApi, RdtscMonotone) {
  u64 a = sys::rdtsc();
  u64 b = sys::rdtsc();
  EXPECT_GE(b, a);
}

TEST(SysApi, ClockAdvances) {
  u64 a = sys::clock_gettime_ns();
  spin_for_ns(100'000);
  EXPECT_GT(sys::clock_gettime_ns(), a);
}

TEST(SysApi, WriteOutCountsAndCharges) {
  CostModel cm = CostModel::zero();
  cm.syscall_ocall_ns = 1000;
  Enclave e(cm);
  char buf[256] = {};
  u64 before = e.counters().trapped_syscalls.load();
  e.ecall([&] { EXPECT_EQ(sys::write_out(buf, sizeof buf), sizeof buf); });
  EXPECT_EQ(e.counters().trapped_syscalls.load(), before + 1);
}

// --- EPC --------------------------------------------------------------------

TEST(Epc, AllocationAndTouch) {
  Enclave e(CostModel::zero());
  EpcAllocator epc(&e, /*resident_limit=*/8);
  auto buf = epc.allocate(3 * kEpcPageSize);
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->size(), 3 * kEpcPageSize);
  EXPECT_EQ(buf->resident_pages(), 0u);

  u8* p = buf->touch(0, 10, /*write=*/true);
  ASSERT_NE(p, nullptr);
  p[0] = 42;
  EXPECT_EQ(buf->resident_pages(), 1u);
  EXPECT_EQ(buf->raw()[0], 42);
}

TEST(Epc, TouchSpanningPages) {
  Enclave e(CostModel::zero());
  EpcAllocator epc(&e, 8);
  auto buf = epc.allocate(4 * kEpcPageSize);
  buf->touch(kEpcPageSize - 10, 20, true);  // straddles pages 0 and 1
  EXPECT_EQ(buf->resident_pages(), 2u);
}

TEST(Epc, TouchOutOfRange) {
  Enclave e(CostModel::zero());
  EpcAllocator epc(&e, 8);
  auto buf = epc.allocate(kEpcPageSize);
  EXPECT_EQ(buf->touch(2 * kEpcPageSize, 1, false), nullptr);
}

TEST(Epc, EvictionKeepsResidencyBounded) {
  Enclave e(CostModel::zero());
  EpcAllocator epc(&e, /*resident_limit=*/4);
  auto buf = epc.allocate(16 * kEpcPageSize);
  for (usize p = 0; p < 16; ++p) buf->touch(p * kEpcPageSize, 1, true);
  EXPECT_LE(epc.resident_count(), 4u);
  EXPECT_EQ(epc.page_ins(), 16u);
  EXPECT_GE(epc.page_outs(), 12u);
}

TEST(Epc, ResidentPageIsFreeToRetouch) {
  Enclave e(CostModel::zero());
  EpcAllocator epc(&e, 4);
  auto buf = epc.allocate(kEpcPageSize);
  buf->touch(0, 1, true);
  u64 ins = epc.page_ins();
  for (int i = 0; i < 10; ++i) buf->touch(0, 1, false);
  EXPECT_EQ(epc.page_ins(), ins);  // no further page-ins
}

TEST(Epc, PagingChargesTimeInsideEnclave) {
  CostModel cm = CostModel::zero();
  cm.epc_page_in_ns = 100'000;
  Enclave e(cm);
  EpcAllocator epc(&e, 16);
  auto buf = epc.allocate(4 * kEpcPageSize);
  u64 t0 = monotonic_ns();
  e.ecall([&] {
    for (usize p = 0; p < 4; ++p) buf->touch(p * kEpcPageSize, 1, true);
  });
  EXPECT_GE(monotonic_ns() - t0, 300'000u);  // 4 × 100 µs, generous bound
}

TEST(Epc, ReleaseFreesResidency) {
  Enclave e(CostModel::zero());
  EpcAllocator epc(&e, 8);
  {
    auto buf = epc.allocate(4 * kEpcPageSize);
    for (usize p = 0; p < 4; ++p) buf->touch(p * kEpcPageSize, 1, true);
    EXPECT_EQ(epc.resident_count(), 4u);
  }
  EXPECT_EQ(epc.resident_count(), 0u);
}

TEST(Epc, WorkingSetWithinLimitNeverEvicts) {
  Enclave e(CostModel::zero());
  EpcAllocator epc(&e, 64);
  auto buf = epc.allocate(32 * kEpcPageSize);
  for (int round = 0; round < 5; ++round) {
    for (usize p = 0; p < 32; ++p) buf->touch(p * kEpcPageSize, 1, false);
  }
  EXPECT_EQ(epc.page_ins(), 32u);
  EXPECT_EQ(epc.page_outs(), 0u);
}

}  // namespace
}  // namespace teeperf::tee
