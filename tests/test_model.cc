// Exhaustive-interleaving verification of the v2 batch-flush / tail-publish
// / torn-tail-tombstone protocol (tests/model/). Every schedule of two
// writers hammering one shard is explored; the dump-time reader must
// recover exactly the committed entries, in per-writer program order, with
// exact tombstone accounting — across ALL interleavings, not the handful a
// stress test happens to hit. The sleep-set reduction is validated against
// the unreduced explorer, and two seeded protocol bugs prove the harness
// actually fails when the protocol is wrong.
#include "tests/model/shm_log_model.h"

#include <gtest/gtest.h>

#include "tests/model/model_checker.h"
#include "tests/model/spill_model.h"

namespace teeperf::model {
namespace {

CheckResult check(const ShmLogModel& m, bool reduce = true) {
  Checker<ShmLogModel> checker(m, reduce);
  return checker.run();
}

TEST(ModelChecker, TinyConfigIsExhaustive) {
  // Two writers, one flush of one entry each: 2 steps per writer, so the
  // full schedule space is C(4,2) = 6 interleavings. The unreduced DFS
  // must execute exactly all of them.
  ShmLogModel m({{{1}}, {{1}}});
  CheckResult naive = check(m, /*reduce=*/false);
  EXPECT_TRUE(naive.ok) << naive.violation;
  EXPECT_EQ(naive.interleavings, 6u);

  CheckResult reduced = check(m, /*reduce=*/true);
  EXPECT_TRUE(reduced.ok) << reduced.violation;
  EXPECT_LE(reduced.interleavings, naive.interleavings);
  // Soundness of the reduction: same reachable terminal states.
  EXPECT_EQ(reduced.terminals, naive.terminals);
}

TEST(ModelChecker, SleepSetReductionPreservesTerminalStates) {
  const std::vector<std::vector<WriterProgram>> configs = {
      {{{2, 1}}, {{1, 2}}},
      {{{3}}, {{3}}},
      {{{1, 1}, 1}, {{2}}},  // writer 0 crashes after its first reserve
      {{{3, 3}}, {{3, 3}}},  // the largest configuration in the sweep
  };
  for (const auto& cfg : configs) {
    ShmLogModel m(cfg);
    CheckResult naive = check(m, false);
    CheckResult reduced = check(m, true);
    EXPECT_TRUE(naive.ok) << naive.violation;
    EXPECT_TRUE(reduced.ok) << reduced.violation;
    EXPECT_EQ(reduced.terminals, naive.terminals);
    EXPECT_LE(reduced.interleavings, naive.interleavings);
    EXPECT_GT(reduced.pruned, 0u);  // the reduction actually reduces
  }
}

TEST(ModelChecker, AllBatchSizesAllInterleavings) {
  // The ISSUE-level property: 2 writers x 2 flushes x batch sizes <= 3,
  // every combination, every interleaving — no loss, no double
  // publication, order preserved.
  u64 total_interleavings = 0;
  for (int a = 1; a <= 3; ++a) {
    for (int b = 1; b <= 3; ++b) {
      for (int c = 1; c <= 3; ++c) {
        for (int d = 1; d <= 3; ++d) {
          ShmLogModel m({{{a, b}}, {{c, d}}});
          CheckResult r = check(m);
          ASSERT_TRUE(r.ok) << "batches (" << a << "," << b << ")/(" << c
                            << "," << d << "): " << r.violation;
          total_interleavings += r.interleavings;
        }
      }
    }
  }
  EXPECT_GT(total_interleavings, 0u);
}

TEST(ModelChecker, CrashAtEveryStepKeepsTombstoneAccountingExact) {
  // Truncate writer 0 after every possible step: each truncation models a
  // SIGKILL mid-flush (the log.append.die / log.flush.die fault points).
  // The reader's tombstone count must stay exact in every interleaving.
  bool saw_tombstones = false;
  const std::vector<int> w0 = {3, 2}, w1 = {2, 3};
  const int w0_steps = 2 + 3 + 2;  // 2 reserves + 5 stores
  for (int crash = 0; crash <= w0_steps; ++crash) {
    ShmLogModel m({{w0, crash}, {w1}});
    if (m.expected_tombstones() > 0) saw_tombstones = true;
    CheckResult r = check(m);
    ASSERT_TRUE(r.ok) << "crash after " << crash << ": " << r.violation;
  }
  // The sweep must actually exercise reserved-but-unwritten slots.
  EXPECT_TRUE(saw_tombstones);

  // Symmetric: writer 1 dies mid-batch while writer 0 runs to completion.
  ShmLogModel m({{w0}, {w1, 1}});
  EXPECT_GT(m.expected_tombstones(), 0);
  CheckResult r = check(m);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ModelChecker, DetectsSplitReservation) {
  // Seeded bug: reservation as load-then-store instead of fetch_add. Two
  // writers can claim the same run; the checker must find a schedule where
  // publication breaks (it is NOT findable in sequential schedules, which
  // is why a bounded-interleaving search is required at all).
  ShmLogModel m({{{1}}, {{1}}}, Bug::kSplitReserve);
  CheckResult r = check(m);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.violation.empty());
  EXPECT_FALSE(r.violating_trace.empty());
  // The unreduced explorer agrees (the reduction lost no violating trace).
  CheckResult naive = check(m, false);
  EXPECT_FALSE(naive.ok);
}

TEST(ModelChecker, DetectsReaderIgnoringTombstones) {
  // Seeded bug: the reader recovers reserved-but-unwritten slots as
  // entries. Only a crashed writer exposes it — with the batch reserved
  // and zero of it stored, every interleaving leaves torn slots behind.
  ShmLogModel m({{{2}, 1}, {{1}}}, Bug::kNoTombstoneScan);
  CheckResult r = check(m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("never committed"), std::string::npos)
      << r.violation;
}

// ---- Spill-drain protocol (tests/model/spill_model.h) ----
//
// Spill configurations always run UNREDUCED: the model blocks threads via
// enabled() conditions over other threads' variables (the space wait, the
// in-order publish wait, the drainer's work wait), which the sleep-set
// reduction does not track. Configurations are sized for plain DFS.

CheckResult check_spill(const SpillLogModel& m) {
  Checker<SpillLogModel> checker(m, /*reduce=*/false);
  return checker.run();
}

TEST(SpillModel, MinimalConfigScheduleCountIsExact) {
  // One writer, one entry, one drain round. The writer's three steps are
  // forced sequential (reserve -> store -> publish), and the drainer's snap
  // blocks until the publish — so exactly ONE schedule exists. This pins
  // down that the waits are modeled as enabledness, not spinning.
  SpillLogModel m({{{1}}}, /*cap=*/2, /*rounds=*/1, /*chunk=*/2);
  CheckResult r = check_spill(m);
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_EQ(r.interleavings, 1u);
}

TEST(SpillModel, ReclaimAllInterleavingsWithWrap) {
  // Two writers through a 3-slot ring, 4 total entries — every schedule
  // wraps, so reclaimed slots are re-reserved and re-stored. Across ALL
  // interleavings: spilled + residue is exactly the committed multiset, in
  // per-writer order, with no tombstone ever reaching a chunk.
  SpillLogModel m({{{2, 1}}, {{1}}}, /*cap=*/3, /*rounds=*/3, /*chunk=*/2);
  CheckResult r = check_spill(m);
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_GT(r.interleavings, 100u);  // genuinely concurrent, not collapsed
}

TEST(SpillModel, CrashAtEveryStepKeepsRecoveryExact) {
  // Truncate writer 0 after every prefix (kLogFlushDie / kLogAppendDie in
  // spill mode): a window reserved but never published wedges later
  // publishers and is never drained — it must surface as residue
  // tombstones, never as chunk content.
  const std::vector<int> w0 = {2, 1};
  const int w0_steps = 2 * 1 + 3 + 1 + 2;  // 2 reserves + 3 stores + 2 pubs
  for (int crash = 0; crash <= w0_steps; ++crash) {
    SpillLogModel m({{w0, crash}, {{1}}}, /*cap=*/3, /*rounds=*/3,
                    /*chunk=*/2);
    CheckResult r = check_spill(m);
    ASSERT_TRUE(r.ok) << "crash after " << crash << ": " << r.violation;
  }
}

TEST(SpillModel, DrainerStoppingEarlyLosesNothing) {
  // The drainer runs fewer rounds than the workload needs (a dead drainer
  // that is never restarted). Writers block on the space wait forever —
  // a legal terminal — and everything already committed is still recovered
  // exactly once from chunks + residue.
  for (int rounds = 0; rounds <= 2; ++rounds) {
    SpillLogModel m({{{2, 2}}, {{1}}}, /*cap=*/3, rounds, /*chunk=*/2);
    CheckResult r = check_spill(m);
    ASSERT_TRUE(r.ok) << "rounds " << rounds << ": " << r.violation;
  }
}

TEST(SpillModel, DetectsMissingSpaceWait) {
  // Seeded bug: writers store without waiting for the drainer to hand the
  // space back. A wrapped window clobbers published-but-undrained slots —
  // some schedule must lose an entry.
  SpillLogModel m({{{2, 2}}}, /*cap=*/2, /*rounds=*/2, /*chunk=*/2,
                  SpillBug::kNoSpaceCheck);
  CheckResult r = check_spill(m);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.violating_trace.empty());
}

TEST(SpillModel, DetectsMissingReclaimZero) {
  // Seeded bug: the drainer advances without zeroing. A writer reserving
  // the recycled slot and crashing before its store leaves the STALE value
  // where recovery expects a tombstone — an already-spilled entry is
  // resurrected (counted twice).
  SpillLogModel m({{{1, 1, 1}, /*crash_after=*/7}}, /*cap=*/2, /*rounds=*/3,
                  /*chunk=*/1, SpillBug::kNoReclaimZero);
  CheckResult r = check_spill(m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("never committed, or twice"), std::string::npos)
      << r.violation;
}

TEST(SpillModel, DetectsConsumingPastPublished) {
  // Seeded bug: the drainer snapshots tail instead of published, spilling
  // reserved-but-unstored slots — torn entries in a durable chunk.
  SpillLogModel m({{{2}}}, /*cap=*/3, /*rounds=*/2, /*chunk=*/2,
                  SpillBug::kConsumeToTail);
  CheckResult r = check_spill(m);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.violation.empty());
}

TEST(SpillModel, DeterministicAcrossRuns) {
  SpillLogModel m({{{2, 1}, 4}, {{1}}}, /*cap=*/3, /*rounds=*/3,
                  /*chunk=*/2);
  CheckResult a = check_spill(m);
  CheckResult b = check_spill(m);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.interleavings, b.interleavings);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.terminals, b.terminals);
}

TEST(ModelChecker, DeterministicAcrossRuns) {
  ShmLogModel m({{{2, 3}, 3}, {{3, 1}}});
  CheckResult a = check(m);
  CheckResult b = check(m);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.interleavings, b.interleavings);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.terminals, b.terminals);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.violating_trace, b.violating_trace);

  ShmLogModel bad({{{1}}, {{1}}}, Bug::kSplitReserve);
  CheckResult c = check(bad);
  CheckResult d = check(bad);
  EXPECT_EQ(c.violation, d.violation);
  EXPECT_EQ(c.violating_trace, d.violating_trace);
}

}  // namespace
}  // namespace teeperf::model
