// Differential fuzzer for the record→analyze pipeline.
//
// The analyzer's contract (§II-B) is that it never trusts the log: dumps
// may arrive truncated, bit-flipped, or actively hostile, and the loader
// must reject or degrade — never crash, never read out of bounds. This
// tool enforces that contract mechanically:
//
//   1. Mutation fuzzing: every corpus file is mutated (bit flips, torn
//      tails, header scrambles, entry splices, zero chunks, growth) and fed
//      through the full analysis surface — load_bytes, reconstruction,
//      reports, flame graph rendering, validation — inside a forked child,
//      so a crash or sanitizer abort is contained, detected, minimized,
//      and saved to the crashers directory as a regression input.
//
//   2. Differential checking: a benign mutation — any reordering of
//      entries that preserves per-thread order, exactly the freedom the
//      lock-free multi-writer log has (§II-C) — must not change analysis
//      results. Each corpus file is reordered with seeded interleavings
//      and the full stats signature (method stats, folded stacks,
//      reconstruction counters) is compared against the original.
//
// Everything derives from --seed, so any failure replays exactly.
//
//   teeperf_fuzz --corpus <dir> [--iters N] [--seed S] [--crashers <dir>]
//   teeperf_fuzz --gen --corpus <dir>     # write the seed corpus and exit
#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "analyzer/mprof.h"
#include "analyzer/profile.h"
#include "analyzer/query.h"
#include "analyzer/report.h"
#include "common/fileutil.h"
#include "common/rng.h"
#include "common/stringutil.h"
#include "core/log_format.h"
#include "flamegraph/flamegraph.h"

using namespace teeperf;

namespace {

// ------------------------------------------------------------ serializing --

std::string serialize_log(const std::vector<LogEntry>& entries, u64 max_entries,
                          u64 tail, u64 flags, double ns_per_tick) {
  LogHeader h;
  h.magic = kLogMagic;
  h.version = kLogVersion;
  h.pid = 4242;
  h.max_entries = max_entries;
  h.flags.store(flags, std::memory_order_relaxed);
  h.tail.store(tail, std::memory_order_relaxed);
  h.ns_per_tick = ns_per_tick;
  std::string out(reinterpret_cast<const char*>(&h), sizeof(LogHeader));
  out.append(reinterpret_cast<const char*>(entries.data()),
             entries.size() * sizeof(LogEntry));
  return out;
}

// v2 (sharded) serializer. `windows` become back-to-back segments with a
// directory in front, the compact form Recorder::dump emits. A nonzero
// `tail_override` for a shard lets regression inputs lie about how much was
// written (hostile-directory cases).
struct ShardSpec {
  std::vector<LogEntry> entries;
  u64 offset_override = ~0ull;  // ~0 = cumulative (honest)
  u64 capacity_override = ~0ull;
  u64 tail_override = ~0ull;
};

std::string serialize_log_v2(const std::vector<ShardSpec>& shards, u64 flags,
                             double ns_per_tick) {
  u64 total = 0;
  for (const auto& s : shards) total += s.entries.size();
  LogHeader h;
  h.magic = kLogMagic;
  h.version = kLogVersionSharded;
  h.shard_count = static_cast<u32>(shards.size());
  h.pid = 4242;
  h.max_entries = total;
  h.flags.store(flags, std::memory_order_relaxed);
  h.ns_per_tick = ns_per_tick;
  std::string out(reinterpret_cast<const char*>(&h), sizeof(LogHeader));
  u64 cursor = 0;
  for (const auto& s : shards) {
    LogShard d;
    d.entry_offset = s.offset_override != ~0ull ? s.offset_override : cursor;
    d.capacity =
        s.capacity_override != ~0ull ? s.capacity_override : s.entries.size();
    d.tail.store(s.tail_override != ~0ull ? s.tail_override : s.entries.size(),
                 std::memory_order_relaxed);
    out.append(reinterpret_cast<const char*>(&d), sizeof(LogShard));
    cursor += s.entries.size();
  }
  for (const auto& s : shards) {
    out.append(reinterpret_cast<const char*>(s.entries.data()),
               s.entries.size() * sizeof(LogEntry));
  }
  return out;
}

LogEntry make_entry(EventKind kind, u64 addr, u64 tid, u64 counter) {
  LogEntry e;
  e.kind_and_counter = LogEntry::pack(kind, counter);
  e.addr = addr;
  e.tid = tid;
  return e;
}

// The seed corpus: one file per interesting shape. Deterministic, so a
// regenerated corpus is byte-identical and diffs stay reviewable.
std::vector<std::pair<std::string, std::string>> build_seed_corpus() {
  std::vector<std::pair<std::string, std::string>> corpus;
  u64 flags = log_flags::kActive | log_flags::kRecordCalls |
              log_flags::kRecordReturns | log_flags::kMultithread;

  {  // Nested single-thread calls, balanced.
    std::vector<LogEntry> es;
    u64 c = 100;
    for (u64 rep = 0; rep < 8; ++rep) {
      es.push_back(make_entry(EventKind::kCall, 0x1000, 0, c += 10));
      es.push_back(make_entry(EventKind::kCall, 0x2000, 0, c += 10));
      es.push_back(make_entry(EventKind::kCall, 0x3000, 0, c += 10));
      es.push_back(make_entry(EventKind::kReturn, 0x3000, 0, c += 10));
      es.push_back(make_entry(EventKind::kReturn, 0x2000, 0, c += 10));
      es.push_back(make_entry(EventKind::kCall, 0x2000, 0, c += 10));
      es.push_back(make_entry(EventKind::kReturn, 0x2000, 0, c += 10));
      es.push_back(make_entry(EventKind::kReturn, 0x1000, 0, c += 10));
    }
    corpus.emplace_back("seed_nested.log",
                        serialize_log(es, 256, es.size(), flags, 2.5));
  }
  {  // Four threads interleaved round-robin.
    std::vector<LogEntry> es;
    u64 c = 1000;
    for (u64 rep = 0; rep < 6; ++rep) {
      for (u64 tid = 0; tid < 4; ++tid) {
        es.push_back(make_entry(EventKind::kCall, 0x100 * (tid + 1), tid, c += 3));
      }
      for (u64 tid = 0; tid < 4; ++tid) {
        es.push_back(make_entry(EventKind::kCall, 0xAA00 + tid, tid, c += 3));
        es.push_back(make_entry(EventKind::kReturn, 0xAA00 + tid, tid, c += 3));
      }
      for (u64 tid = 0; tid < 4; ++tid) {
        es.push_back(
            make_entry(EventKind::kReturn, 0x100 * (tid + 1), tid, c += 3));
      }
    }
    corpus.emplace_back("seed_threads.log",
                        serialize_log(es, 512, es.size(), flags, 1.0));
  }
  {  // Torn tail: tail advanced past two all-zero (tombstone) slots.
    std::vector<LogEntry> es;
    u64 c = 50;
    es.push_back(make_entry(EventKind::kCall, 0x7000, 0, c += 5));
    es.push_back(make_entry(EventKind::kCall, 0x7100, 0, c += 5));
    es.push_back(make_entry(EventKind::kReturn, 0x7100, 0, c += 5));
    es.push_back(LogEntry{});
    es.push_back(LogEntry{});
    corpus.emplace_back("seed_torn_tail.log",
                        serialize_log(es, 64, es.size(), flags, 0.8));
  }
  {  // Pathological: stray + mismatched returns, zero addresses, backjumps.
    std::vector<LogEntry> es;
    es.push_back(make_entry(EventKind::kReturn, 0x9000, 1, 500));  // stray
    es.push_back(make_entry(EventKind::kCall, 0x9000, 1, 510));
    es.push_back(make_entry(EventKind::kReturn, 0x9999, 1, 490));  // mismatch + backjump
    es.push_back(make_entry(EventKind::kCall, 0, 2, 600));         // null addr
    es.push_back(make_entry(EventKind::kCall, 0x9100, 1, 620));    // left open
    corpus.emplace_back("seed_defects.log",
                        serialize_log(es, 32, es.size(), flags, 1.0));
  }
  {  // Deep recursion: one method 40 frames deep.
    std::vector<LogEntry> es;
    u64 c = 10;
    for (int i = 0; i < 40; ++i)
      es.push_back(make_entry(EventKind::kCall, 0x4000, 0, c += 2));
    for (int i = 0; i < 40; ++i)
      es.push_back(make_entry(EventKind::kReturn, 0x4000, 0, c += 2));
    corpus.emplace_back("seed_recursion.log",
                        serialize_log(es, 128, es.size(), flags, 1.0));
  }
  {  // Empty log: header only, tail 0.
    corpus.emplace_back("seed_empty.log",
                        serialize_log({}, 16, 0, flags, 1.0));
  }
  {  // Regression: max_entries/tail near 2^63 — the u64 products that used
     // to overflow size checks in ProfileLog::adopt. The loader must clamp
     // to the bytes actually present.
    std::vector<LogEntry> es;
    es.push_back(make_entry(EventKind::kCall, 0x5000, 0, 10));
    es.push_back(make_entry(EventKind::kReturn, 0x5000, 0, 20));
    corpus.emplace_back(
        "regression_huge_header.log",
        serialize_log(es, 1ull << 61, ~0ull >> 1, flags, 1.0));
  }
  {  // Regression: non-finite ns_per_tick from a corrupt header must be
     // discarded, not propagated into every report as NaN.
    std::vector<LogEntry> es;
    es.push_back(make_entry(EventKind::kCall, 0x6000, 0, 10));
    es.push_back(make_entry(EventKind::kReturn, 0x6000, 0, 30));
    corpus.emplace_back(
        "regression_nan_tick.log",
        serialize_log(es, 16, es.size(), flags,
                      std::numeric_limits<double>::quiet_NaN()));
  }
  {  // v2 sharded: four threads spread over four shards (tid % 4), each
     // shard a balanced nested workload — the compact form a sharded
     // recorder dumps.
    std::vector<ShardSpec> shards(4);
    for (u64 tid = 0; tid < 4; ++tid) {
      u64 c = 100 * (tid + 1);
      auto& es = shards[tid].entries;
      for (u64 rep = 0; rep < 4; ++rep) {
        es.push_back(make_entry(EventKind::kCall, 0x100 * (tid + 1), tid, c += 7));
        es.push_back(make_entry(EventKind::kCall, 0xBB00 + tid, tid, c += 7));
        es.push_back(make_entry(EventKind::kReturn, 0xBB00 + tid, tid, c += 7));
        es.push_back(make_entry(EventKind::kReturn, 0x100 * (tid + 1), tid, c += 7));
      }
    }
    corpus.emplace_back("seed_v2_shards.log",
                        serialize_log_v2(shards, flags, 1.5));
  }
  {  // v2 torn batch: a batched writer died after reserving a whole flush —
     // shard 1's window ends in a run of tombstones the analyzer must skip
     // and count, while shard 0 stays clean.
    std::vector<ShardSpec> shards(2);
    u64 c = 40;
    auto& clean = shards[0].entries;
    clean.push_back(make_entry(EventKind::kCall, 0x7000, 0, c += 5));
    clean.push_back(make_entry(EventKind::kReturn, 0x7000, 0, c += 5));
    auto& torn = shards[1].entries;
    torn.push_back(make_entry(EventKind::kCall, 0x7100, 1, c += 5));
    torn.push_back(make_entry(EventKind::kReturn, 0x7100, 1, c += 5));
    for (int i = 0; i < 4; ++i) torn.push_back(LogEntry{});
    corpus.emplace_back("seed_v2_torn_batch.log",
                        serialize_log_v2(shards, flags, 0.8));
  }
  {  // Regression: a hostile v2 directory — offsets past the file, a
     // capacity/tail pair chosen so offset + capacity wraps u64. The loader
     // must clamp every window to the bytes actually present.
    std::vector<ShardSpec> shards(3);
    shards[0].entries.push_back(make_entry(EventKind::kCall, 0x8000, 0, 10));
    shards[0].entries.push_back(make_entry(EventKind::kReturn, 0x8000, 0, 20));
    shards[1].offset_override = 1ull << 60;  // far past the file
    shards[1].capacity_override = 1ull << 20;
    shards[1].tail_override = 1ull << 20;
    shards[2].offset_override = ~0ull - 8;   // offset + capacity wraps u64
    shards[2].capacity_override = 64;
    shards[2].tail_override = 64;
    corpus.emplace_back("regression_v2_bad_directory.log",
                        serialize_log_v2(shards, flags, 1.0));
  }
  {  // Regression: overlapping full-size windows with saturated tails — the
     // copy-budget check must stop the loader from multiplying a small file
     // into an unbounded allocation.
    std::vector<ShardSpec> shards(4);
    for (u64 tid = 0; tid < 4; ++tid) {
      auto& es = shards[tid].entries;
      es.push_back(make_entry(EventKind::kCall, 0x9000 + tid, tid, 10 + tid));
      es.push_back(make_entry(EventKind::kReturn, 0x9000 + tid, tid, 20 + tid));
    }
    for (u64 s = 0; s < 4; ++s) {
      shards[s].offset_override = 0;      // every window claims the whole file
      shards[s].capacity_override = ~0ull >> 1;
      shards[s].tail_override = ~0ull >> 1;
    }
    corpus.emplace_back("regression_v2_overlap.log",
                        serialize_log_v2(shards, flags, 1.0));
  }
  return corpus;
}

// `.mprof` seed inputs: the mergeable-profile loader joins the same
// differential fuzz loop as the dump loader. Derived from the dump seeds
// above (via the in-memory pipeline), so they stay deterministic and cover
// realistic shapes: nested stacks, multi-thread, defects, a merged pair,
// and the empty aggregate (the merge identity).
std::vector<std::pair<std::string, std::string>> build_mprof_seed_corpus() {
  std::vector<std::pair<std::string, std::string>> corpus;
  auto dumps = build_seed_corpus();
  auto mprof_of = [&](const char* dump_name) {
    for (const auto& [name, bytes] : dumps) {
      if (name == dump_name) {
        auto p = analyzer::Profile::load_bytes(bytes);
        return analyzer::MergeableProfile::from_profile(*p).save();
      }
    }
    return std::string();
  };
  corpus.emplace_back("seed_nested.mprof", mprof_of("seed_nested.log"));
  corpus.emplace_back("seed_threads.mprof", mprof_of("seed_threads.log"));
  corpus.emplace_back("seed_defects.mprof", mprof_of("seed_defects.log"));
  corpus.emplace_back("seed_empty.mprof",
                      analyzer::MergeableProfile{}.save());
  {
    auto a = analyzer::MergeableProfile::load_bytes(
        mprof_of("seed_recursion.log"));
    auto b = analyzer::MergeableProfile::load_bytes(
        mprof_of("seed_v2_shards.log"));
    a->merge(*b);
    corpus.emplace_back("seed_merged_pair.mprof", a->save());
  }
  return corpus;
}

// --------------------------------------------------------------- analysis --

// The full analysis surface a hostile dump can reach. Runs inside a forked
// child during fuzzing, so crashes and sanitizer aborts are contained.
void exercise(const std::string& bytes) {
  // The mergeable-profile surface: hostile `.mprof` bytes must be rejected
  // or survive the full aggregate API — including another save/load cycle
  // and self-merge (the operations a fleet rollup performs).
  if (auto m = analyzer::MergeableProfile::load_bytes(bytes)) {
    m->folded();
    m->total_exclusive();
    analyzer::mprof_summary(*m);
    analyzer::mprof_method_report(*m);
    analyzer::MergeableProfile::load_bytes(m->save());
    analyzer::MergeableProfile acc;
    acc.merge(*m);
    acc.merge(*m);
    acc.save();
  }

  auto profile = analyzer::Profile::load_bytes(bytes);
  if (!profile) return;  // rejected: that is a pass
  analyzer::MergeableProfile::from_profile(*profile).save();
  profile->method_stats();
  profile->call_edges();
  profile->folded_stacks();
  profile->hottest_stack();
  analyzer::method_report(*profile);
  analyzer::call_graph_report(*profile);
  analyzer::thread_report(*profile);
  analyzer::call_tree_report(*profile);
  analyzer::bottom_up_report(*profile);
  analyzer::gprof_flat_report(*profile);
  analyzer::recon_summary(*profile);
  analyzer::chrome_trace_json(*profile);
  analyzer::csv_export(*profile);
  analyzer::timeline_csv(*profile);
  flamegraph::SvgOptions opts;
  flamegraph::render_profile_svg(*profile, opts);
  analyzer::InvocationTable table(*profile);
  table.where_min_inclusive(1).sort_by(analyzer::SortKey::kExclusive).top(10);
  table.group_by_method();
}

// A stats signature that must be invariant under benign mutations. Sorted
// line set so tie-order differences in sorted reports cannot matter.
std::string signature(const analyzer::Profile& p) {
  std::vector<std::string> lines;
  for (const auto& s : p.method_stats()) {
    lines.push_back(str_format(
        "m %llx n=%llu inc=%llu exc=%llu min=%llu max=%llu",
        static_cast<unsigned long long>(s.method),
        static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.inclusive_total),
        static_cast<unsigned long long>(s.exclusive_total),
        static_cast<unsigned long long>(s.min_inclusive),
        static_cast<unsigned long long>(s.max_inclusive)));
  }
  for (const auto& [path, ticks] : p.folded_stacks()) {
    lines.push_back(
        str_format("f %s %llu", path.c_str(), static_cast<unsigned long long>(ticks)));
  }
  const auto& r = p.recon_stats();
  lines.push_back(str_format(
      "r stray=%llu mis=%llu unw=%llu inc=%llu tomb=%llu threads=%llu",
      static_cast<unsigned long long>(r.stray_returns),
      static_cast<unsigned long long>(r.mismatched_returns),
      static_cast<unsigned long long>(r.unwound_frames),
      static_cast<unsigned long long>(r.incomplete),
      static_cast<unsigned long long>(r.tombstones),
      static_cast<unsigned long long>(p.thread_count())));
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------- mutants --

std::string mutate(const std::string& base, Xorshift64& rng) {
  std::string m = base;
  switch (rng.next_below(8)) {
    case 0: {  // flip 1..8 bits
      if (m.empty()) break;
      u64 flips = 1 + rng.next_below(8);
      for (u64 i = 0; i < flips; ++i) {
        u64 bit = rng.next_below(m.size() * 8);
        m[bit / 8] = static_cast<char>(m[bit / 8] ^ (1u << (bit % 8)));
      }
      break;
    }
    case 1: {  // set random bytes
      if (m.empty()) break;
      u64 n = 1 + rng.next_below(16);
      for (u64 i = 0; i < n; ++i) {
        m[rng.next_below(m.size())] = static_cast<char>(rng.next_below(256));
      }
      break;
    }
    case 2:  // torn tail: truncate anywhere, including mid-header
      m.resize(rng.next_below(m.size() + 1));
      break;
    case 3: {  // grow with random bytes (phantom entries past the real tail)
      u64 n = 1 + rng.next_below(256);
      for (u64 i = 0; i < n; ++i) {
        m.push_back(static_cast<char>(rng.next_below(256)));
      }
      break;
    }
    case 4: {  // header scramble: overwrite an aligned 8-byte header field
      if (m.size() < sizeof(LogHeader)) break;
      u64 off = 8 * rng.next_below(sizeof(LogHeader) / 8);
      u64 v = rng.next();
      if (rng.next_bool(0.4)) v = rng.next_below(5) * 0x7fffffffull;  // edge-ish
      std::memcpy(&m[off], &v, 8);
      break;
    }
    case 5: {  // entry splice: copy one entry range over another
      if (m.size() < sizeof(LogHeader) + 2 * sizeof(LogEntry)) break;
      u64 slots = (m.size() - sizeof(LogHeader)) / sizeof(LogEntry);
      u64 from = rng.next_below(slots), to = rng.next_below(slots);
      u64 len = 1 + rng.next_below(4);
      len = std::min({len, slots - from, slots - to});
      std::memmove(&m[sizeof(LogHeader) + to * sizeof(LogEntry)],
                   &m[sizeof(LogHeader) + from * sizeof(LogEntry)],
                   len * sizeof(LogEntry));
      break;
    }
    case 6: {  // zero a chunk (synthetic tombstones / wiped regions)
      if (m.empty()) break;
      u64 off = rng.next_below(m.size());
      u64 len = std::min<u64>(1 + rng.next_below(96), m.size() - off);
      std::memset(&m[off], 0, len);
      break;
    }
    default: {  // duplicate a chunk onto the end
      if (m.empty()) break;
      u64 off = rng.next_below(m.size());
      u64 len = std::min<u64>(1 + rng.next_below(128), m.size() - off);
      m.append(m, off, len);
      break;
    }
  }
  return m;
}

// Reinterleaves `n` entries at byte offset `off` in place, preserving each
// thread's internal order — the exact nondeterminism the lock-free log
// permits within one tail's domain.
void reorder_entry_span(std::string* bytes, usize off, u64 n, Xorshift64& rng) {
  if (n < 2) return;
  std::vector<LogEntry> entries(n);
  std::memcpy(entries.data(), bytes->data() + off, n * sizeof(LogEntry));

  std::vector<u64> tids;
  std::vector<std::vector<LogEntry>> queues;
  for (const LogEntry& e : entries) {
    usize q = 0;
    for (; q < tids.size(); ++q) {
      if (tids[q] == e.tid) break;
    }
    if (q == tids.size()) {
      tids.push_back(e.tid);
      queues.emplace_back();
    }
    queues[q].push_back(e);
  }
  std::vector<usize> heads(queues.size(), 0);
  std::vector<LogEntry> shuffled;
  shuffled.reserve(n);
  while (shuffled.size() < n) {
    usize q = rng.next_below(queues.size());
    if (heads[q] >= queues[q].size()) continue;
    shuffled.push_back(queues[q][heads[q]++]);
  }
  std::memcpy(bytes->data() + off, shuffled.data(), n * sizeof(LogEntry));
}

// Benign mutation: reinterleave entries across threads while preserving
// each thread's order. Version-aware: a v1 log is one span; a v2 log is
// reordered within each shard window (entries never move between shards —
// a thread is pinned to its shard, so crossing would not be benign). A v2
// directory that is out of range or overlapping is left untouched: with
// aliased windows an in-window shuffle rewrites another window's bytes,
// which is no longer a benign mutation.
std::string reorder_across_threads(const std::string& base, Xorshift64& rng) {
  if (base.size() < sizeof(LogHeader) + sizeof(LogEntry)) return base;
  alignas(LogHeader) unsigned char header_buf[sizeof(LogHeader)];
  std::memcpy(header_buf, base.data(), sizeof(LogHeader));
  const auto* h = reinterpret_cast<const LogHeader*>(header_buf);
  std::string out = base;

  if (h->version != kLogVersionSharded) {
    u64 n = (base.size() - sizeof(LogHeader)) / sizeof(LogEntry);
    reorder_entry_span(&out, sizeof(LogHeader), n, rng);
    return out;
  }

  u32 nshards = h->shard_count;
  if (nshards == 0 || nshards > kMaxLogShards) return base;
  usize dir_bytes = static_cast<usize>(nshards) * sizeof(LogShard);
  if (base.size() - sizeof(LogHeader) < dir_bytes) return base;
  std::vector<LogShard> dir(nshards);
  std::memcpy(static_cast<void*>(dir.data()), base.data() + sizeof(LogHeader),
              dir_bytes);
  u64 available = (base.size() - sizeof(LogHeader) - dir_bytes) / sizeof(LogEntry);

  // Windows clamped the way the loader clamps them; reject aliasing.
  std::vector<std::pair<u64, u64>> windows(nshards, {0, 0});  // (off, n)
  for (u32 s = 0; s < nshards; ++s) {
    u64 off = dir[s].entry_offset;
    if (off >= available) continue;
    u64 n = dir[s].tail.load(std::memory_order_relaxed);
    n = std::min({n, dir[s].capacity, available - off});
    windows[s] = {off, n};
  }
  for (u32 a = 0; a < nshards; ++a) {
    for (u32 b = a + 1; b < nshards; ++b) {
      if (windows[a].second == 0 || windows[b].second == 0) continue;
      if (windows[a].first < windows[b].first + windows[b].second &&
          windows[b].first < windows[a].first + windows[a].second) {
        return base;  // overlapping directory: no benign reorder exists
      }
    }
  }
  usize entry_base = sizeof(LogHeader) + dir_bytes;
  for (u32 s = 0; s < nshards; ++s) {
    reorder_entry_span(&out, entry_base + windows[s].first * sizeof(LogEntry),
                       windows[s].second, rng);
  }
  return out;
}

// ---------------------------------------------------------- crash harness --

// Runs the analysis surface in a forked child; any signal, sanitizer abort
// or nonzero exit counts as a crash.
bool crashes(const std::string& bytes) {
  std::fflush(nullptr);
  pid_t pid = fork();
  if (pid < 0) {
    std::fprintf(stderr, "teeperf_fuzz: fork failed\n");
    std::exit(1);
  }
  if (pid == 0) {
    exercise(bytes);
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return !(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// Shrinks a crashing input: repeatedly drop chunks / truncate while the
// crash reproduces. Bounded, greedy, deterministic.
std::string minimize(std::string bytes) {
  // Tail truncation by halves first — the cheapest big wins.
  for (usize cut = bytes.size() / 2; cut >= 1 && bytes.size() > 1; cut /= 2) {
    while (bytes.size() > cut) {
      std::string candidate = bytes.substr(0, bytes.size() - cut);
      if (!crashes(candidate)) break;
      bytes = std::move(candidate);
    }
    if (cut == 1) break;
  }
  // Chunk removal from the middle.
  for (usize chunk = std::max<usize>(bytes.size() / 4, 1); chunk >= 8;
       chunk /= 2) {
    for (usize off = 0; off + chunk <= bytes.size();) {
      std::string candidate = bytes.substr(0, off) + bytes.substr(off + chunk);
      if (crashes(candidate)) {
        bytes = std::move(candidate);
      } else {
        off += chunk;
      }
    }
  }
  return bytes;
}

// ------------------------------------------------------------------ corpus --

std::vector<std::string> list_corpus(const std::string& dir) {
  std::vector<std::string> files;
  DIR* d = opendir(dir.c_str());
  if (!d) return files;
  auto has_suffix = [](const std::string& name, const char* suffix) {
    usize n = std::strlen(suffix);
    return name.size() > n && name.compare(name.size() - n, n, suffix) == 0;
  };
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (has_suffix(name, ".log") || has_suffix(name, ".mprof")) {
      files.push_back(dir + "/" + name);
    }
  }
  closedir(d);
  std::sort(files.begin(), files.end());
  return files;
}

int usage() {
  std::fprintf(stderr,
               "usage: teeperf_fuzz --corpus <dir> [--iters N] [--seed S]\n"
               "                    [--crashers <dir>] [--reorders N]\n"
               "       teeperf_fuzz --gen --corpus <dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_dir, crashers_dir;
  u64 iters = 1000, seed = 1, reorders = 64;
  bool gen = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--corpus" && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (arg == "--crashers" && i + 1 < argc) {
      crashers_dir = argv[++i];
    } else if (arg == "--iters" && i + 1 < argc) {
      iters = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "--reorders" && i + 1 < argc) {
      reorders = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "--gen") {
      gen = true;
    } else {
      std::fprintf(stderr, "teeperf_fuzz: unknown option %s\n", arg.c_str());
      return usage();
    }
  }
  if (corpus_dir.empty()) return usage();

  if (gen) {
    if (!make_dirs(corpus_dir)) {
      std::fprintf(stderr, "teeperf_fuzz: cannot create %s\n", corpus_dir.c_str());
      return 1;
    }
    auto seeds = build_seed_corpus();
    auto mprof_seeds = build_mprof_seed_corpus();
    seeds.insert(seeds.end(), mprof_seeds.begin(), mprof_seeds.end());
    for (const auto& [name, bytes] : seeds) {
      std::string path = corpus_dir + "/" + name;
      if (!write_file(path, bytes)) {
        std::fprintf(stderr, "teeperf_fuzz: cannot write %s\n", path.c_str());
        return 1;
      }
      std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
    }
    return 0;
  }

  std::vector<std::string> files = list_corpus(corpus_dir);
  if (files.empty()) {
    std::fprintf(stderr, "teeperf_fuzz: no .log corpus files in %s\n",
                 corpus_dir.c_str());
    return 1;
  }
  if (crashers_dir.empty()) crashers_dir = corpus_dir;
  make_dirs(crashers_dir);

  std::vector<std::string> corpus;
  for (const std::string& f : files) {
    if (auto bytes = read_file(f)) corpus.push_back(std::move(*bytes));
  }

  Xorshift64 rng(seed);
  u64 crash_count = 0, mismatch_count = 0, rejected = 0, loaded = 0;

  // Phase 1 — regression replay + differential invariance on every corpus
  // file (corpus files are trusted inputs: analyzed in-process, any crash
  // here fails the whole run loudly, which is what a regression should do).
  for (usize f = 0; f < corpus.size(); ++f) {
    // `.mprof` corpus files: format invariants instead of reorder
    // invariance — the canonical serialization must roundtrip exactly, and
    // merging into the empty aggregate must be the identity.
    if (auto m = analyzer::MergeableProfile::load_bytes(corpus[f])) {
      bool bad = m->save() != corpus[f];
      analyzer::MergeableProfile folded;
      if (!folded.merge(*m) || !(folded == *m)) bad = true;
      if (bad) {
        ++mismatch_count;
        std::fprintf(stderr,
                     "teeperf_fuzz: mprof roundtrip/identity violated for "
                     "corpus file %zu\n",
                     f);
      }
      continue;
    }
    auto base_profile = analyzer::Profile::load_bytes(corpus[f]);
    if (!base_profile) continue;  // a checked-in crasher the loader rejects
    std::string base_sig = signature(*base_profile);
    for (u64 r = 0; r < reorders; ++r) {
      std::string shuffled = reorder_across_threads(corpus[f], rng);
      auto p = analyzer::Profile::load_bytes(shuffled);
      if (!p || signature(*p) != base_sig) {
        ++mismatch_count;
        std::string path = str_format("%s/mismatch_s%llu_f%zu_r%llu.log",
                                      crashers_dir.c_str(),
                                      static_cast<unsigned long long>(seed), f,
                                      static_cast<unsigned long long>(r));
        write_file(path, shuffled);
        std::fprintf(stderr,
                     "teeperf_fuzz: benign reorder changed results for corpus "
                     "file %zu (saved %s)\n",
                     f, path.c_str());
        break;  // one report per corpus file is enough
      }
    }
  }

  // Phase 2 — mutation fuzzing in forked children.
  for (u64 i = 0; i < iters; ++i) {
    const std::string& base = corpus[rng.next_below(corpus.size())];
    std::string mutant = mutate(base, rng);
    // Stacked mutations on occasion: corruption rarely comes alone.
    while (rng.next_bool(0.3)) mutant = mutate(mutant, rng);

    if (crashes(mutant)) {
      ++crash_count;
      std::string raw_path = str_format("%s/crash_s%llu_i%llu.log",
                                        crashers_dir.c_str(),
                                        static_cast<unsigned long long>(seed),
                                        static_cast<unsigned long long>(i));
      write_file(raw_path, mutant);
      std::string min = minimize(mutant);
      std::string min_path = str_format("%s/crash_s%llu_i%llu.min.log",
                                        crashers_dir.c_str(),
                                        static_cast<unsigned long long>(seed),
                                        static_cast<unsigned long long>(i));
      write_file(min_path, min);
      std::fprintf(stderr,
                   "teeperf_fuzz: crash on mutant %llu (%zu bytes, minimized "
                   "to %zu) — saved %s\n",
                   static_cast<unsigned long long>(i), mutant.size(),
                   min.size(), min_path.c_str());
      if (crash_count >= 10) {
        std::fprintf(stderr, "teeperf_fuzz: stopping after 10 crashes\n");
        break;
      }
      continue;
    }
    // Count accept/reject in-process for the summary (the child already
    // proved this input safe).
    if (analyzer::Profile::load_bytes(mutant)) {
      ++loaded;
    } else {
      ++rejected;
    }
  }

  std::printf(
      "teeperf_fuzz: seed=%llu corpus=%zu iters=%llu loaded=%llu "
      "rejected=%llu crashes=%llu mismatches=%llu\n",
      static_cast<unsigned long long>(seed), corpus.size(),
      static_cast<unsigned long long>(iters),
      static_cast<unsigned long long>(loaded),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(crash_count),
      static_cast<unsigned long long>(mismatch_count));
  return crash_count || mismatch_count ? 1 : 0;
}
