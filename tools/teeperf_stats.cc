// Live self-telemetry scraper (TEEMon-style): attaches to the obs
// shared-memory region of a running teeperf_record session (or any Recorder
// with a named log) from an untrusted host process and prints its health
// metrics and event journal — without touching the session.
//
//   teeperf_stats <pid | session-name | shm-name> [options]
//   teeperf_stats --list
//
// The positional argument is resolved through the session registry
// ($TEEPERF_SESSION_DIR — see common/session_registry.h): a pid matches
// the session that pid published (the newest, if it published several), a
// session name ("teeperf.<pid>.<nonce>") matches its descriptor. An
// explicit shm name (".obs" appended when missing) bypasses the registry;
// a bare pid with no descriptor falls back to the legacy
// "/teeperf.<pid>.obs" name. --list enumerates every registered session.
//
// Options:
//   --json         JSON-lines instead of human text (metrics then events)
//   --events N     show up to N journal records           (default: 32)
//   --watch MS     re-print every MS milliseconds until the session goes
//                  away or interrupted (streaming mode)
//   --no-events    metrics only
//   --arm NAME=N   externally arm fault point NAME (nth=N) in the session:
//                  writes gauge "fault.arm.NAME" into the obs region; the
//                  session's watchdog polls it, arms the point and clears
//                  the gauge (TESTING.md "External arming"). Repeatable.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "analyzer/mprof.h"
#include "analyzer/report.h"
#include "common/session_registry.h"
#include "common/stringutil.h"
#include "obs/export.h"
#include "obs/metric_names.h"
#include "obs/session.h"

using namespace teeperf;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: teeperf_stats <pid | session | shm-name> [--json] "
               "[--events N] [--watch ms] [--no-events] [--arm name=N]\n"
               "       teeperf_stats --list\n"
               "       teeperf_stats --mprof <file.mprof>\n");
}

// `teeperf_stats --mprof <file>`: offline inspection of a mergeable profile
// aggregate (DESIGN.md §12) — summary line plus the sorted method table.
int mprof_main(const char* path) {
  std::string err;
  auto m = analyzer::MergeableProfile::load(path, &err);
  if (!m) {
    std::fprintf(stderr, "teeperf_stats: cannot load %s: %s\n", path,
                 err.c_str());
    return 1;
  }
  std::printf("%s\n%s", analyzer::mprof_summary(*m).c_str(),
              analyzer::mprof_method_report(*m).c_str());
  return 0;
}

bool all_digits(const char* s) {
  if (!*s) return false;
  for (; *s; ++s) {
    if (*s < '0' || *s > '9') return false;
  }
  return true;
}

// Registry-first resolution: a pid or session name finds the obs segment
// through the published descriptor, so concurrent sessions can never
// cross-attach. Explicit shm names and the legacy "/teeperf.<pid>.obs"
// convention keep working.
std::string resolve_name(const char* arg) {
  auto sessions = session_registry::list_sessions(session_registry::registry_dir());
  if (all_digits(arg)) {
    u64 pid = static_cast<u64>(std::atoll(arg));
    const session_registry::SessionDescriptor* best = nullptr;
    for (const auto& d : sessions) {
      if (d.pid == pid && !d.obs_shm.empty() &&
          (!best || d.start_ns > best->start_ns)) {
        best = &d;
      }
    }
    if (best) return best->obs_shm;
    return str_format("/teeperf.%s.obs", arg);
  }
  for (const auto& d : sessions) {
    if (d.name == arg && !d.obs_shm.empty()) return d.obs_shm;
  }
  std::string name = arg;
  if (!ends_with(name, ".obs")) name += ".obs";
  return name;
}

// `teeperf_stats --list`: one line per registered session.
int list_sessions_main() {
  auto sessions = session_registry::list_sessions(session_registry::registry_dir());
  if (sessions.empty()) {
    std::printf("no registered sessions under %s\n",
                session_registry::registry_dir().c_str());
    return 0;
  }
  std::printf("%-36s %8s %-6s %s\n", "SESSION", "PID", "STATE", "OBS");
  for (const auto& d : sessions) {
    std::printf("%-36s %8llu %-6s %s\n", d.name.c_str(),
                static_cast<unsigned long long>(d.pid),
                session_registry::pid_alive(d.pid) ? "live" : "stale",
                d.obs_shm.empty() ? "-" : d.obs_shm.c_str());
  }
  return 0;
}

// Read-only metric lookup: gauge()/counter() are find-or-create, and a
// scraper must never grow the scraped session's registry just to peek.
u64 scalar_value(const obs::MetricsRegistry& reg, std::string_view name) {
  u64 v = 0;
  reg.visit_scalars([&](const obs::MetricSlot& s) {
    if (name == s.name) v = s.value.load(std::memory_order_relaxed);
  });
  return v;
}

void print_snapshot(obs::SelfTelemetry& t, bool json, bool events, usize limit) {
  if (json) {
    std::fputs(obs::metrics_jsonl(t.registry()).c_str(), stdout);
    if (events) std::fputs(obs::events_jsonl(t.journal()).c_str(), stdout);
  } else {
    std::printf("session %s (pid %llu): %zu metrics, %llu events\n",
                t.shm_name().c_str(),
                static_cast<unsigned long long>(
                    t.registry().layout().header->pid),
                t.registry().scalar_count() + t.registry().histogram_count(),
                static_cast<unsigned long long>(t.journal().total()));
    // Replicated-counter sessions get a one-line health digest above the raw
    // metric dump — the first thing an operator wants from trusted time.
    if (u64 replicas = scalar_value(t.registry(),
                                    obs::metric_names::kCounterReplicas)) {
      std::printf(
          "replicated counter: %llu replicas, primary=%llu, failovers=%llu, "
          "stalled=%llu, drift=%llu permille\n",
          static_cast<unsigned long long>(replicas),
          static_cast<unsigned long long>(scalar_value(
              t.registry(), obs::metric_names::kCounterReplicaPrimary)),
          static_cast<unsigned long long>(scalar_value(
              t.registry(), obs::metric_names::kCounterFailover)),
          static_cast<unsigned long long>(scalar_value(
              t.registry(), obs::metric_names::kCounterReplicaStalled)),
          static_cast<unsigned long long>(scalar_value(
              t.registry(), obs::metric_names::kCounterReplicaDrift)));
    }
    std::fputs(obs::metrics_text(t.registry()).c_str(), stdout);
    if (events) {
      std::printf("events:\n");
      std::fputs(obs::events_text(t.journal(), limit).c_str(), stdout);
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  if (std::strcmp(argv[1], "--list") == 0) {
    if (argc != 2) {
      usage();
      return 2;
    }
    return list_sessions_main();
  }
  if (std::strcmp(argv[1], "--mprof") == 0) {
    if (argc != 3) {
      usage();
      return 2;
    }
    return mprof_main(argv[2]);
  }
  bool json = false, events = true;
  usize event_limit = 32;
  long watch_ms = -1;
  std::vector<std::pair<std::string, u64>> arms;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--no-events") {
      events = false;
    } else if (arg == "--events" && i + 1 < argc) {
      event_limit = static_cast<usize>(std::atoll(argv[++i]));
    } else if (arg == "--watch" && i + 1 < argc) {
      watch_ms = std::atol(argv[++i]);
    } else if (arg == "--arm" && i + 1 < argc) {
      std::string spec = argv[++i];
      usize eq = spec.find('=');
      std::string point = spec.substr(0, eq == std::string::npos ? spec.size() : eq);
      long n = eq == std::string::npos ? 1 : std::atol(spec.c_str() + eq + 1);
      if (point.empty() || n < 1) {
        std::fprintf(stderr, "teeperf_stats: bad --arm spec '%s' (want name=N)\n",
                     spec.c_str());
        usage();
        return 2;
      }
      arms.emplace_back(point, static_cast<u64>(n));
    } else {
      usage();
      return 2;
    }
  }

  std::string name = resolve_name(argv[1]);
  auto telemetry = obs::SelfTelemetry::open(name);
  if (!telemetry) {
    std::fprintf(stderr,
                 "teeperf_stats: no telemetry region at %s (is the session "
                 "running, and was it created with telemetry on?)\n",
                 name.c_str());
    return 1;
  }

  // External fault arming: write the request gauges; the session's watchdog
  // polls them, arms the named points in-process and zeroes the gauges.
  for (const auto& [point, n] : arms) {
    telemetry->registry().gauge(teeperf::obs::metric_names::kFaultArmPrefix + point).set(n);
    std::fprintf(stderr, "teeperf_stats: armed %s (nth=%llu) in %s\n",
                 point.c_str(), static_cast<unsigned long long>(n),
                 telemetry->shm_name().c_str());
  }

  print_snapshot(*telemetry, json, events, event_limit);
  while (watch_ms > 0) {
    usleep(static_cast<useconds_t>(watch_ms) * 1000);
    // Reopen each round: when the owner exits and unlinks the region, the
    // open fails and streaming ends cleanly.
    auto again = obs::SelfTelemetry::open(name);
    if (!again) {
      std::fprintf(stderr, "teeperf_stats: session ended\n");
      break;
    }
    if (!json) std::printf("---\n");
    print_snapshot(*again, json, events, event_limit);
  }
  return 0;
}
