// The fleet-monitoring daemon (TEEMon-style, PAPERS.md): one host agent
// continuously discovering every live profiling session on this machine
// through the session registry, scraping their obs regions, and serving
// Prometheus metrics plus rolling flame graphs over local HTTP.
//
//   teeperf_monitord --listen 127.0.0.1:9464
//   curl http://127.0.0.1:9464/metrics
//
// Endpoints:
//   /metrics              Prometheus text exposition: every session's
//                         gauges labeled {session,pid} (shard/thread labels
//                         for the dynamic names) + daemon self-metrics
//   /flamegraph/<name>    rolling folded-stack window for one session
//                         (?svg=1 renders the SVG instead)
//   /sessions             JSON-lines echo of the attached descriptors
//   /healthz              liveness probe
//
// Options:
//   --listen ADDR         "host:port", ":0" (ephemeral), or "unix:/path"
//                         (default: 127.0.0.1:9464)
//   --session-dir DIR     session registry directory
//                         (default: $TEEPERF_SESSION_DIR or the per-host
//                         default — see common/session_registry.h)
//   --poll-ms N           registry scan / attach cadence   (default: 500)
//   --gc-interval-ms N    stale-session GC cadence         (default: 2000)
//   --no-gc               never unlink stale descriptors / orphaned shm
//   --max-sessions N      attachment cap                   (default: 64)
//   --flame-interval-ms N min interval between per-session flame rebuilds
//   --flame-window N      max log entries copied per rebuild
//   --flame-keep N        rolling snapshots retained per session
//   --port-file PATH      write the resolved TCP port (for ":0" scripting)
//   --once                poll once, print /metrics to stdout, exit
//
// Client mode (so the e2e harness needs no curl):
//   teeperf_monitord --get http://127.0.0.1:9464/metrics
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fileutil.h"
#include "common/stringutil.h"
#include "monitord/http.h"
#include "monitord/monitor.h"

using namespace teeperf;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

void usage() {
  std::fprintf(stderr,
               "usage: teeperf_monitord [--listen host:port|unix:path] "
               "[--session-dir dir] [--poll-ms n] [--gc-interval-ms n] "
               "[--no-gc] [--max-sessions n] [--flame-interval-ms n] "
               "[--flame-window n] [--flame-keep n] [--port-file path] "
               "[--once]\n"
               "       teeperf_monitord --get <url>\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen = "127.0.0.1:9464";
  std::string port_file;
  std::string get_url;
  bool once = false;
  monitord::MonitordOptions opts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      listen = argv[++i];
    } else if (arg == "--session-dir" && i + 1 < argc) {
      opts.session_dir = argv[++i];
    } else if (arg == "--poll-ms" && i + 1 < argc) {
      opts.poll_interval_ms = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "--gc-interval-ms" && i + 1 < argc) {
      opts.gc_interval_ms = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "--no-gc") {
      opts.gc = false;
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      opts.max_sessions = static_cast<u32>(std::atol(argv[++i]));
    } else if (arg == "--flame-interval-ms" && i + 1 < argc) {
      opts.flame_interval_ms = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "--flame-window" && i + 1 < argc) {
      opts.flame_window_entries = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "--flame-keep" && i + 1 < argc) {
      opts.flame_keep = static_cast<u32>(std::atol(argv[++i]));
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--get" && i + 1 < argc) {
      get_url = argv[++i];
    } else {
      usage();
      return 2;
    }
  }
  if (opts.poll_interval_ms == 0 || opts.max_sessions == 0 ||
      opts.flame_keep == 0 || opts.flame_window_entries == 0) {
    usage();
    return 2;
  }

  if (!get_url.empty()) {
    int status = 0;
    std::string body, error;
    if (!monitord::http_get(get_url, &status, &body, &error)) {
      std::fprintf(stderr, "teeperf_monitord: GET %s failed: %s\n",
                   get_url.c_str(), error.c_str());
      return 1;
    }
    std::fputs(body.c_str(), stdout);
    return status == 200 ? 0 : 1;
  }

  monitord::Monitord daemon(opts);

  if (once) {
    daemon.poll();
    std::fputs(daemon.scrape_metrics().c_str(), stdout);
    return 0;
  }

  monitord::HttpServer server([&daemon](const std::string& raw_path) {
    std::string path = raw_path;
    std::string query;
    if (usize q = path.find('?'); q != std::string::npos) {
      query = path.substr(q + 1);
      path.resize(q);
    }
    if (path == "/metrics") {
      return monitord::HttpResponse{200,
                                    "text/plain; version=0.0.4; charset=utf-8",
                                    daemon.scrape_metrics()};
    }
    if (path == "/healthz") {
      return monitord::HttpResponse{200, "text/plain", "ok\n"};
    }
    if (path == "/sessions") {
      return monitord::HttpResponse{200, "application/json",
                                    daemon.sessions_json()};
    }
    if (starts_with(path, "/flamegraph/")) {
      std::string session = path.substr(std::strlen("/flamegraph/"));
      bool svg = query.find("svg") != std::string::npos;
      auto body = svg ? daemon.flamegraph_svg(session)
                      : daemon.flamegraph_folded(session);
      if (!body) {
        return monitord::HttpResponse{404, "text/plain",
                                      "unknown session " + session + "\n"};
      }
      return monitord::HttpResponse{
          200, svg ? "image/svg+xml" : "text/plain", std::move(*body)};
    }
    return monitord::HttpResponse{404, "text/plain", "not found\n"};
  });

  std::string error;
  if (!server.serve(listen, &error)) {
    std::fprintf(stderr, "teeperf_monitord: cannot listen on %s: %s\n",
                 listen.c_str(), error.c_str());
    return 1;
  }
  if (!port_file.empty() &&
      !write_file(port_file, std::to_string(server.port()) + "\n")) {
    std::fprintf(stderr, "teeperf_monitord: cannot write %s\n",
                 port_file.c_str());
    server.shutdown();
    return 1;
  }

  signal(SIGINT, on_signal);
  signal(SIGTERM, on_signal);
  daemon.start();
  std::fprintf(stderr,
               "teeperf_monitord: serving %s (sessions from %s); "
               "GET /metrics for the fleet\n",
               server.endpoint().c_str(), daemon.session_dir().c_str());
  while (!g_stop.load(std::memory_order_acquire)) {
    usleep(100'000);
  }
  std::fprintf(stderr, "teeperf_monitord: shutting down\n");
  server.shutdown();
  daemon.stop();
  return 0;
}
