// Stage #4 as a CLI: folded stacks → standalone SVG flame graph. Input is
// the flamegraph.pl format, so this also renders folded files produced by
// other tools.
//
//   teeperf_flamegraph <in.folded> <out.svg> [--title T] [--width W]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fileutil.h"
#include "flamegraph/flamegraph.h"

using namespace teeperf;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: teeperf_flamegraph <in.folded> <out.svg> [--title T] "
                 "[--width W]\n");
    return 2;
  }
  auto folded_text = read_file(argv[1]);
  if (!folded_text) {
    std::fprintf(stderr, "cannot read %s\n", argv[1]);
    return 1;
  }
  flamegraph::SvgOptions opts;
  opts.title = argv[1];
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--title") == 0 && i + 1 < argc) {
      opts.title = argv[++i];
    } else if (std::strcmp(argv[i], "--width") == 0 && i + 1 < argc) {
      opts.width = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    }
  }

  auto stacks = flamegraph::parse_folded_text(*folded_text);
  if (stacks.empty()) {
    std::fprintf(stderr, "no stacks parsed from %s\n", argv[1]);
    return 1;
  }
  if (!write_file(argv[2], flamegraph::render_svg(stacks, opts))) {
    std::fprintf(stderr, "cannot write %s\n", argv[2]);
    return 1;
  }
  std::printf("wrote %s (%zu stacks)\n", argv[2], stacks.size());
  return 0;
}
