// The offline analyzer as a CLI (§II-B stage #3) — reads "<prefix>.log" +
// "<prefix>.sym" produced by teeperf_record (or Recorder::dump) and answers
// from the command line what the paper's interactive pandas session
// answers.
//
//   teeperf_analyze <prefix> [commands]
//     --top N           per-method report, N rows       (default command)
//     --callgraph       dynamic caller→callee edge table
//     --threads         per-thread rollup
//     --method <substr> invocation table filtered by method name
//     --tid <n>         restrict --method/--top to one thread
//     --tree            top-down call tree with percentages
//     --timeline <file>     per-thread invocation intervals as CSV
//     --timeline-svg <file> swim-lane SVG trace view
//     --validate        raw-log consistency check (monotonicity, balance)
//     --merge <p2>...   merge further dumps (multi-process profiling)
//     --chrome <file>   Chrome trace-event JSON (chrome://tracing)
//     --gprof           gprof-style flat profile
//     --bottomup        inverted call graph (who reaches the hot methods)
//     --hottest         the single most expensive stack
//     --csv <file>      dump every invocation as CSV
//     --folded <file>   write flame-graph folded stacks
//     --svg <file>      render the flame graph
//     --diff <prefix2>  before/after comparison against a second profile
//
// Mergeable-profile commands (DESIGN.md §12) take no session prefix — they
// run the streaming analyzer (bounded memory, one chunk file at a time) or
// operate on `.mprof` aggregates directly:
//   teeperf_analyze --mprof <prefix> <out.mprof>      stream-analyze a
//                      session (spill or plain) into a mergeable profile
//   teeperf_analyze --mprof-merge <out> <in.mprof>... fold aggregates
//                      (associative + commutative; any order, any grouping)
//   teeperf_analyze --mprof-info <file> [--top N] [--folded <out>]
//                      inspect an aggregate / emit its flame-graph input
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analyzer/mprof.h"
#include "analyzer/profile.h"
#include "analyzer/stream.h"
#include "core/log_format.h"
#include "analyzer/query.h"
#include "analyzer/report.h"
#include "common/fileutil.h"
#include "flamegraph/flamegraph.h"

using namespace teeperf;
using namespace teeperf::analyzer;

namespace {

int mprof_emit_main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: teeperf_analyze --mprof <prefix> <out.mprof>\n");
    return 2;
  }
  std::string err;
  auto m = StreamAnalyzer::analyze(argv[2], &err);
  if (!m) {
    std::fprintf(stderr, "teeperf_analyze: cannot analyze %s: %s\n", argv[2],
                 err.c_str());
    return 1;
  }
  if (!m->save_to(argv[3])) {
    std::fprintf(stderr, "teeperf_analyze: cannot write %s\n", argv[3]);
    return 1;
  }
  std::printf("%s\nwrote %s\n", mprof_summary(*m).c_str(), argv[3]);
  return 0;
}

int mprof_merge_main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: teeperf_analyze --mprof-merge <out.mprof> "
                 "<in.mprof>...\n");
    return 2;
  }
  MergeableProfile acc;
  for (int i = 3; i < argc; ++i) {
    std::string err;
    auto m = MergeableProfile::load(argv[i], &err);
    if (!m) {
      std::fprintf(stderr, "teeperf_analyze: cannot load %s: %s\n", argv[i],
                   err.c_str());
      return 1;
    }
    if (!acc.merge(*m)) {
      std::fprintf(stderr, "teeperf_analyze: merging %s overflows a counter\n",
                   argv[i]);
      return 1;
    }
  }
  if (!acc.save_to(argv[2])) {
    std::fprintf(stderr, "teeperf_analyze: cannot write %s\n", argv[2]);
    return 1;
  }
  std::printf("%s\nwrote %s\n", mprof_summary(acc).c_str(), argv[2]);
  return 0;
}

int mprof_info_main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: teeperf_analyze --mprof-info <file.mprof> [--top N] "
                 "[--folded <out>]\n");
    return 2;
  }
  std::string err;
  auto m = MergeableProfile::load(argv[2], &err);
  if (!m) {
    std::fprintf(stderr, "teeperf_analyze: cannot load %s: %s\n", argv[2],
                 err.c_str());
    return 1;
  }
  std::printf("%s\n", mprof_summary(*m).c_str());
  usize top = 30;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top = static_cast<usize>(std::atoll(argv[++i]));
    } else if (arg == "--folded" && i + 1 < argc) {
      std::string path = argv[++i];
      if (!write_file(path, m->folded())) return 1;
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }
  std::printf("%s\n", mprof_method_report(*m, top).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: teeperf_analyze <prefix> [options]\n");
    return 2;
  }
  if (std::strcmp(argv[1], "--mprof") == 0) return mprof_emit_main(argc, argv);
  if (std::strcmp(argv[1], "--mprof-merge") == 0) {
    return mprof_merge_main(argc, argv);
  }
  if (std::strcmp(argv[1], "--mprof-info") == 0) {
    return mprof_info_main(argc, argv);
  }
  std::string prefix = argv[1];
  auto profile = Profile::load(prefix);
  if (!profile) {
    std::fprintf(stderr, "teeperf_analyze: cannot load %s.log\n", prefix.c_str());
    return 1;
  }
  std::printf("%s\n", recon_summary(*profile).c_str());
  // Self-telemetry sidecars from the recorder, when present: surfaces
  // counter stalls, log saturation, and other recorder-side degradation
  // before any numbers are trusted.
  std::string health = health_report(prefix);
  if (!health.empty()) std::printf("\n%s", health.c_str());
  std::printf("\n");

  bool did_something = false;
  i64 tid_filter = -1;

  // Pre-scan for --tid so it applies regardless of argument order.
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--tid") == 0) tid_filter = std::atoll(argv[i + 1]);
  }

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      usize n = static_cast<usize>(std::atoll(argv[++i]));
      if (tid_filter >= 0) {
        auto t = InvocationTable(*profile).where_tid(static_cast<u64>(tid_filter));
        std::printf("top invocations on tid %lld:\n%s\n",
                    static_cast<long long>(tid_filter),
                    t.sort_by(SortKey::kExclusive).top(n).to_string(n).c_str());
      } else {
        std::printf("%s\n", method_report(*profile, n).c_str());
      }
      did_something = true;
    } else if (arg == "--callgraph") {
      std::printf("%s\n", call_graph_report(*profile).c_str());
      did_something = true;
    } else if (arg == "--threads") {
      std::printf("%s\n", thread_report(*profile).c_str());
      did_something = true;
    } else if (arg == "--method" && i + 1 < argc) {
      std::string needle = argv[++i];
      auto t = InvocationTable(*profile).where_name_contains(needle);
      if (tid_filter >= 0) t = t.where_tid(static_cast<u64>(tid_filter));
      std::printf("%zu invocations matching \"%s\" (%.3f ms inclusive):\n%s\n",
                  t.count(), needle.c_str(),
                  profile->ticks_to_ns(t.sum_inclusive()) / 1e6,
                  t.sort_by(SortKey::kInclusive).to_string(25).c_str());
      std::printf("by caller:\n");
      for (auto& g : t.group_by_caller()) {
        std::printf("  %8zu from %s\n", g.count, g.key.c_str());
      }
      did_something = true;
    } else if (arg == "--tree") {
      std::printf("%s\n", call_tree_report(*profile).c_str());
      did_something = true;
    } else if (arg == "--timeline" && i + 1 < argc) {
      std::string path = argv[++i];
      if (!write_file(path, timeline_csv(*profile))) return 1;
      std::printf("wrote %s\n", path.c_str());
      did_something = true;
    } else if (arg == "--timeline-svg" && i + 1 < argc) {
      std::string path = argv[++i];
      flamegraph::TimelineOptions topts;
      topts.title = prefix;
      if (!write_file(path, flamegraph::render_timeline_svg(*profile, topts)))
        return 1;
      std::printf("wrote %s\n", path.c_str());
      did_something = true;
    } else if (arg == "--validate") {
      auto maybe_issues = Profile::validate_file(prefix);
      if (!maybe_issues) {
        std::fprintf(stderr, "cannot read %s.log for validation\n",
                     prefix.c_str());
        return 1;
      }
      auto& issues = *maybe_issues;
      if (issues.empty()) {
        std::printf("validation: clean\n");
      } else {
        for (const auto& issue : issues) {
          std::printf("validation: tid=%llu entry=%llu %s\n",
                      static_cast<unsigned long long>(issue.tid),
                      static_cast<unsigned long long>(issue.entry_index),
                      issue.detail.c_str());
        }
      }
      did_something = true;
    } else if (arg == "--merge" && i + 1 < argc) {
      // Re-analyze this prefix together with additional dumps (multi-process
      // profiling; thread ids are namespaced per input).
      std::vector<std::string> all{prefix};
      while (i + 1 < argc && argv[i + 1][0] != '-') all.emplace_back(argv[++i]);
      auto merged = Profile::load_many(all);
      if (!merged) return 1;
      std::printf("merged %zu dumps: %s\n%s\n", all.size(),
                  recon_summary(*merged).c_str(),
                  method_report(*merged).c_str());
      did_something = true;
    } else if (arg == "--chrome" && i + 1 < argc) {
      std::string path = argv[++i];
      if (!write_file(path, chrome_trace_json(*profile))) return 1;
      std::printf("wrote %s (load in chrome://tracing or Perfetto)\n",
                  path.c_str());
      did_something = true;
    } else if (arg == "--bottomup") {
      std::printf("%s\n", bottom_up_report(*profile).c_str());
      did_something = true;
    } else if (arg == "--gprof") {
      std::printf("%s\n", gprof_flat_report(*profile).c_str());
      did_something = true;
    } else if (arg == "--hottest") {
      auto [path, ticks] = profile->hottest_stack();
      std::printf("hottest stack (%.3f ms exclusive):\n  %s\n",
                  profile->ticks_to_ns(ticks) / 1e6, path.c_str());
      did_something = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      std::string path = argv[++i];
      if (!write_file(path, csv_export(*profile))) return 1;
      std::printf("wrote %s\n", path.c_str());
      did_something = true;
    } else if (arg == "--folded" && i + 1 < argc) {
      std::string path = argv[++i];
      if (!write_file(path, flamegraph::to_folded_text(profile->folded_stacks())))
        return 1;
      std::printf("wrote %s\n", path.c_str());
      did_something = true;
    } else if (arg == "--svg" && i + 1 < argc) {
      std::string path = argv[++i];
      flamegraph::SvgOptions opts;
      opts.title = prefix;
      if (!write_file(path, flamegraph::render_profile_svg(*profile, opts)))
        return 1;
      std::printf("wrote %s\n", path.c_str());
      did_something = true;
    } else if (arg == "--diff" && i + 1 < argc) {
      std::string other = argv[++i];
      auto after = Profile::load(other);
      if (!after) {
        std::fprintf(stderr, "cannot load %s.log\n", other.c_str());
        return 1;
      }
      std::printf("diff (%s → %s):\n%s\n", prefix.c_str(), other.c_str(),
                  diff_report(*profile, *after).c_str());
      did_something = true;
    } else if (arg == "--tid") {
      ++i;  // consumed in the pre-scan
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }

  if (!did_something) std::printf("%s\n", method_report(*profile).c_str());
  return 0;
}
