// The recorder wrapper as its own host process (§II-B stage #2) — the
// paper's command-line workflow:
//
//   teeperf_record -o run -- ./my_instrumented_app args...
//
// The wrapper creates the shared-memory log, optionally runs the software
// counter (in this process, on the host — the TEE never needs a timer),
// launches the application with TEEPERF_SHM/TEEPERF_COUNTER/TEEPERF_SYM
// set, waits for it, and persists "run.log". The application (anything
// linking teeperf_core, instrumented via -finstrument-functions or
// TEEPERF_SCOPE) self-attaches before main() and writes "run.sym" at exit.
//
// Options:
//   -o <prefix>    output prefix                (default: teeperf)
//   -n <entries>   log capacity                 (default: 1048576)
//   -c <counter>   tsc | software | steady_clock (default: tsc)
//   --inactive     start with measurement off (flip on later via the log
//                  header flags — dynamic activation)
//   --calls-only / --returns-only   restrict recorded event kinds
//   --filter allow:<names>|deny:<names>   selective profiling in the app
//   --start-after-ms N   activate measurement N ms into the run (implies
//                        --inactive) — the wrapper flips the header flag
//                        while the application executes (§II-B)
//   --stop-after-ms N    deactivate measurement after N ms
//   --ring               ring mode: overwrite oldest entries when full
//                        (keep the newest window of a long run)
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <cstring>

#include "common/fileutil.h"
#include "common/stringutil.h"
#include "core/counter.h"
#include "core/log_format.h"
#include "core/shm.h"

using namespace teeperf;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: teeperf_record [-o prefix] [-n entries] [-c tsc|software|"
               "steady_clock] [--inactive] [--calls-only|--returns-only] -- "
               "<command> [args...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefix = "teeperf";
  u64 max_entries = 1u << 20;
  std::string counter = "tsc";
  bool active = true;
  bool calls = true, returns = true;
  std::string filter_spec;
  long start_after_ms = -1, stop_after_ms = -1;
  bool ring = false;

  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--") {
      ++i;
      break;
    } else if (arg == "-o" && i + 1 < argc) {
      prefix = argv[++i];
    } else if (arg == "-n" && i + 1 < argc) {
      max_entries = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "-c" && i + 1 < argc) {
      counter = argv[++i];
    } else if (arg == "--inactive") {
      active = false;
    } else if (arg == "--calls-only") {
      returns = false;
    } else if (arg == "--returns-only") {
      calls = false;
    } else if (arg == "--ring") {
      ring = true;
    } else if (arg == "--filter" && i + 1 < argc) {
      filter_spec = argv[++i];
    } else if (arg == "--start-after-ms" && i + 1 < argc) {
      start_after_ms = std::atol(argv[++i]);
      active = false;
    } else if (arg == "--stop-after-ms" && i + 1 < argc) {
      stop_after_ms = std::atol(argv[++i]);
    } else {
      usage();
      return 2;
    }
  }
  if (i >= argc || max_entries == 0) {
    usage();
    return 2;
  }

  CounterMode mode = CounterMode::kTsc;
  if (counter == "software") mode = CounterMode::kSoftware;
  else if (counter == "steady_clock") mode = CounterMode::kSteadyClock;
  else if (counter != "tsc") {
    usage();
    return 2;
  }

  // Shared-memory log, owned by this wrapper.
  std::string shm_name = str_format("/teeperf.%d", getpid());
  SharedMemoryRegion shm;
  usize bytes = ProfileLog::bytes_for(max_entries);
  if (!shm.create(shm_name, bytes)) {
    std::fprintf(stderr, "teeperf_record: shm_open(%s, %zu bytes) failed\n",
                 shm_name.c_str(), bytes);
    return 1;
  }
  ProfileLog log;
  u64 flags = log_flags::kMultithread;
  if (ring) flags |= log_flags::kRingBuffer;
  if (active) flags |= log_flags::kActive;
  if (calls) flags |= log_flags::kRecordCalls;
  if (returns) flags |= log_flags::kRecordReturns;
  if (!log.init(shm.data(), bytes, 0, flags)) {
    std::fprintf(stderr, "teeperf_record: log init failed\n");
    return 1;
  }
  log.header()->counter_mode = static_cast<u32>(mode);

  // The software counter runs here, on the host — the measured application
  // only ever reads the header word.
  std::unique_ptr<SoftwareCounter> sw;
  if (mode == CounterMode::kSoftware) {
    sw = std::make_unique<SoftwareCounter>(log.header(), /*yield_every=*/4096);
    sw->start();
  }

  pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    setenv("TEEPERF_SHM", shm_name.c_str(), 1);
    setenv("TEEPERF_COUNTER", counter.c_str(), 1);
    setenv("TEEPERF_SYM", (prefix + ".sym").c_str(), 1);
    if (!filter_spec.empty()) setenv("TEEPERF_FILTER", filter_spec.c_str(), 1);
    execvp(argv[i], argv + i);
    std::perror("execvp");
    _exit(127);
  }

  // Dynamic activation (§II-B): the flags word is atomic in shared memory,
  // so the wrapper can toggle measurement while the application runs.
  std::atomic<bool> child_done{false};
  std::thread toggler([&] {
    auto wait_ms = [&](long ms) {
      for (long waited = 0; waited < ms && !child_done.load(); waited += 10) {
        usleep(10'000);
      }
    };
    if (start_after_ms >= 0) {
      wait_ms(start_after_ms);
      if (!child_done.load()) log.set_active(true);
    }
    if (stop_after_ms >= 0) {
      wait_ms(stop_after_ms - (start_after_ms > 0 ? start_after_ms : 0));
      if (!child_done.load()) log.set_active(false);
    }
  });

  int status = 0;
  waitpid(child, &status, 0);
  child_done.store(true);
  toggler.join();
  log.header()->pid = static_cast<u64>(child);

  // Measure tick rate before the counter stops, then persist.
  log.header()->ns_per_tick = counter_ns_per_tick(mode, log.header());
  if (sw) sw->stop();
  log.set_active(false);

  u64 tail = log.header()->tail.load(std::memory_order_acquire);
  u64 n = tail < max_entries ? tail : max_entries;
  if (ring && tail > max_entries) {
    // Normalize the wrapped window so offline loaders see plain order.
    std::vector<LogEntry> ordered;
    log.snapshot_ordered(&ordered);
    LogHeader header_copy;
    std::memcpy(&header_copy, log.header(), sizeof(LogHeader));
    header_copy.tail.store(ordered.size(), std::memory_order_relaxed);
    header_copy.flags.store(log.flags() & ~log_flags::kRingBuffer,
                            std::memory_order_relaxed);
    std::string out(reinterpret_cast<const char*>(&header_copy),
                    sizeof(LogHeader));
    out.append(reinterpret_cast<const char*>(ordered.data()),
               ordered.size() * sizeof(LogEntry));
    if (!write_file(prefix + ".log", out)) {
      std::fprintf(stderr, "teeperf_record: writing %s.log failed\n",
                   prefix.c_str());
      return 1;
    }
  } else {
    usize out_bytes = sizeof(LogHeader) + static_cast<usize>(n) * sizeof(LogEntry);
    if (!write_file(prefix + ".log",
                    std::string_view(static_cast<const char*>(shm.data()),
                                     out_bytes))) {
      std::fprintf(stderr, "teeperf_record: writing %s.log failed\n",
                   prefix.c_str());
      return 1;
    }
  }

  std::fprintf(stderr,
               "teeperf_record: %llu entries (%llu attempted), counter=%s, "
               "wrote %s.log%s\n",
               static_cast<unsigned long long>(n),
               static_cast<unsigned long long>(tail), counter.c_str(),
               prefix.c_str(),
               file_exists(prefix + ".sym") ? (" + " + prefix + ".sym").c_str()
                                            : " (no .sym — did the app link "
                                              "teeperf_core?)");
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 1;
}
