// The recorder wrapper as its own host process (§II-B stage #2) — the
// paper's command-line workflow:
//
//   teeperf_record -o run -- ./my_instrumented_app args...
//
// The wrapper creates the shared-memory log, optionally runs the software
// counter (in this process, on the host — the TEE never needs a timer),
// launches the application with TEEPERF_SHM/TEEPERF_COUNTER/TEEPERF_SYM
// set, waits for it, and persists "run.log". The application (anything
// linking teeperf_core, instrumented via -finstrument-functions or
// TEEPERF_SCOPE) self-attaches before main() and writes "run.sym" at exit.
//
// Options:
//   -o <prefix>    output prefix                (default: teeperf)
//   -n <entries>   log capacity                 (default: 1048576)
//   -c <counter>   tsc | software | steady_clock (default: tsc)
//   --counter-replicas N   replicated trusted time (DESIGN.md §13, software
//                  counter only): run N counter replicas on distinct cores,
//                  each with a cache-line-isolated shm word; a detector
//                  cross-checks them, fails over when the elected primary
//                  stalls or jumps backwards, and continuously calibrates
//                  ticks→ns so the dump carries wall-clock-accurate time.
//                  0 (default) keeps the classic single counter thread
//   --shards N     log format v2 shard count: per-thread shard segments
//                  with cache-line-private tails (see DESIGN.md "Log format
//                  v2"). 0 = classic v1 single tail; default auto-sizes to
//                  the hardware concurrency
//   --inactive     start with measurement off (flip on later via the log
//                  header flags — dynamic activation)
//   --calls-only / --returns-only   restrict recorded event kinds
//   --filter allow:<names>|deny:<names>   selective profiling in the app
//   --start-after-ms N   activate measurement N ms into the run (implies
//                        --inactive) — the wrapper flips the header flag
//                        while the application executes (§II-B)
//   --stop-after-ms N    deactivate measurement after N ms
//   --ring               ring mode: overwrite oldest entries when full
//                        (keep the newest window of a long run)
//   --spill <dir>        spill-drain mode (DESIGN.md §10): a drainer thread
//                        in this wrapper continuously consumes published
//                        entries to chunk files "<dir>/<prefix-base>.seg.NNNN"
//                        and writers reclaim the space — unbounded sessions
//                        with no ring-mode data loss. Pass the prefix's own
//                        directory so teeperf_analyze finds the chunks next
//                        to the .log. Excludes --ring and --shards 0
//   --spill-chunk-entries N   per-shard entries consumed per chunk
//                        (default: 32768)
//   --no-telemetry       skip the self-telemetry region / watchdog
//   --hold-ms N          keep the session (shm log, telemetry region,
//                        watchdog) alive N ms after the child exits — lets
//                        teeperf_stats scrape a finished-but-held session
//   --freeze-counter-after-ms N   fault injection: stop the software
//                        counter thread N ms into the run so the watchdog's
//                        stall detection can be demonstrated end to end
//   --faults <spec>      arm deterministic fault points (see TESTING.md),
//                        e.g. "dump.torn:nth=1;counter.stall:nth=1" — armed
//                        in this wrapper and exported to the child via
//                        TEEPERF_FAULTS
//   --fault-seed N       seed for probabilistic / value-drawing faults
//                        (default: 1; exported as TEEPERF_FAULT_SEED)
//
// The wrapper also publishes self-telemetry: a second shared-memory region
// "<base>.obs" next to the "<base>.log" segment (base =
// "/teeperf.<pid>.<nonce>", the multi-session naming scheme) holds live
// metrics (ring occupancy, entry rates, counter health) plus a structured
// event journal; a watchdog thread re-measures the counter against
// CLOCK_MONOTONIC continuously. The session is announced in the on-disk
// session registry ($TEEPERF_SESSION_DIR), which is how teeperf_stats and
// teeperf_monitord discover it. At exit the wrapper persists
// "<prefix>.health" (human snapshot) and "<prefix>.events.jsonl", which
// teeperf_analyze folds into its report as the "recorder health" section.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/fileutil.h"
#include "common/session_registry.h"
#include "common/shm.h"
#include "common/spin.h"
#include "faultsim/fault.h"
#include "common/stringutil.h"
#include "core/counter.h"
#include "core/log_format.h"
#include "core/replicated_counter.h"
#include "drain/drainer.h"
#include "obs/export.h"
#include "obs/metric_names.h"
#include "obs/session.h"
#include "obs/watchdog.h"

using namespace teeperf;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: teeperf_record [-o prefix] [-n entries] [-c tsc|software|"
               "steady_clock] [--counter-replicas n] [--inactive] "
               "[--calls-only|--returns-only] "
               "[--faults spec] [--fault-seed n] -- <command> [args...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefix = "teeperf";
  u64 max_entries = 1u << 20;
  std::string counter = "tsc";
  bool active = true;
  bool calls = true, returns = true;
  std::string filter_spec;
  long start_after_ms = -1, stop_after_ms = -1;
  long shards = -1;  // -1 = auto, 0 = v1 single tail, >0 = explicit v2
  bool ring = false;
  std::string spill_dir;
  u64 spill_chunk_entries = 1u << 15;
  bool telemetry = true;
  long hold_ms = 0, freeze_counter_after_ms = -1;
  long counter_replicas = 0;
  std::string fault_spec;
  u64 fault_seed = 1;

  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--") {
      ++i;
      break;
    } else if (arg == "-o" && i + 1 < argc) {
      prefix = argv[++i];
    } else if (arg == "-n" && i + 1 < argc) {
      max_entries = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "-c" && i + 1 < argc) {
      counter = argv[++i];
    } else if (arg == "--inactive") {
      active = false;
    } else if (arg == "--calls-only") {
      returns = false;
    } else if (arg == "--returns-only") {
      calls = false;
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = std::atol(argv[++i]);
      if (shards < 0 || shards > static_cast<long>(kMaxLogShards)) {
        usage();
        return 2;
      }
    } else if (arg == "--ring") {
      ring = true;
    } else if (arg == "--spill" && i + 1 < argc) {
      spill_dir = argv[++i];
    } else if (arg == "--spill-chunk-entries" && i + 1 < argc) {
      spill_chunk_entries = static_cast<u64>(std::atoll(argv[++i]));
      if (spill_chunk_entries == 0) {
        usage();
        return 2;
      }
    } else if (arg == "--counter-replicas" && i + 1 < argc) {
      counter_replicas = std::atol(argv[++i]);
      if (counter_replicas < 0 ||
          counter_replicas > static_cast<long>(kMaxCounterReplicas)) {
        usage();
        return 2;
      }
    } else if (arg == "--no-telemetry") {
      telemetry = false;
    } else if (arg == "--hold-ms" && i + 1 < argc) {
      hold_ms = std::atol(argv[++i]);
    } else if (arg == "--freeze-counter-after-ms" && i + 1 < argc) {
      freeze_counter_after_ms = std::atol(argv[++i]);
    } else if (arg == "--faults" && i + 1 < argc) {
      fault_spec = argv[++i];
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      fault_seed = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "--filter" && i + 1 < argc) {
      filter_spec = argv[++i];
    } else if (arg == "--start-after-ms" && i + 1 < argc) {
      start_after_ms = std::atol(argv[++i]);
      active = false;
    } else if (arg == "--stop-after-ms" && i + 1 < argc) {
      stop_after_ms = std::atol(argv[++i]);
    } else {
      usage();
      return 2;
    }
  }
  if (i >= argc || max_entries == 0) {
    usage();
    return 2;
  }
  if (!spill_dir.empty() && ring) {
    std::fprintf(stderr, "teeperf_record: --spill excludes --ring (the two "
                         "reclaim policies cannot coexist)\n");
    return 2;
  }
  if (!spill_dir.empty() && shards == 0) {
    std::fprintf(stderr, "teeperf_record: --spill requires a sharded (v2) "
                         "log; drop --shards 0\n");
    return 2;
  }

  // Fault injection (TESTING.md): a bad spec is a usage error — arming the
  // wrong point silently would make a fault run look healthy.
  if (!fault_spec.empty()) {
    fault::Registry::instance().set_seed(fault_seed);
    std::string fault_error;
    if (!fault::Registry::instance().arm_from_spec(fault_spec, &fault_error)) {
      std::fprintf(stderr, "teeperf_record: bad --faults spec: %s\n",
                   fault_error.c_str());
      usage();
      return 2;
    }
  }

  CounterMode mode = CounterMode::kTsc;
  if (counter == "software") mode = CounterMode::kSoftware;
  else if (counter == "steady_clock") mode = CounterMode::kSteadyClock;
  else if (counter != "tsc") {
    usage();
    return 2;
  }

  // Shard count (log format v2): auto picks a power of two near the core
  // count, reduced until every shard keeps >= 1024 entries — same policy as
  // the in-process Recorder.
  u32 shard_count;
  if (shards >= 0) {
    shard_count = static_cast<u32>(shards);
  } else {
    u32 hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    shard_count = 1;
    while (shard_count < hw && shard_count < 64) shard_count <<= 1;
    while (shard_count > 1 && max_entries / shard_count < 1024) shard_count >>= 1;
  }

  // Stale-session GC on the way in: reclaim descriptors and shm segments
  // orphaned by crashed sessions, so a host that loops crashing recorders
  // never leaks /dev/shm (the same sweep teeperf_monitord runs
  // continuously).
  std::string session_dir = session_registry::registry_dir();
  {
    auto gc = session_registry::gc_stale_sessions(session_dir);
    if (gc.descriptors || gc.segments) {
      std::fprintf(stderr,
                   "teeperf_record: reclaimed %u stale session descriptor(s), "
                   "%u orphaned shm segment(s)\n",
                   gc.descriptors, gc.segments);
    }
  }

  // Shared-memory log, owned by this wrapper. The session base
  // "/teeperf.<pid>.<nonce>" is collision-free across concurrent sessions
  // (and pid reuse); creation is O_EXCL so a nonce collision just retries.
  // Replication only applies to the software counter (hardware sources have
  // nothing to replicate); silently dropping the request would hide a typo'd
  // command line, so reject it.
  if (counter_replicas > 0 && mode != CounterMode::kSoftware) {
    std::fprintf(stderr, "teeperf_record: --counter-replicas requires "
                         "-c software\n");
    return 2;
  }
  u32 replica_count = static_cast<u32>(counter_replicas);

  std::string shm_base;
  std::string shm_name;
  SharedMemoryRegion shm;
  usize bytes =
      ProfileLog::bytes_for_replicated(max_entries, shard_count, replica_count);
  for (int attempt = 0; attempt < 4 && !shm.valid(); ++attempt) {
    shm_base = session_registry::shm_base(static_cast<u64>(getpid()),
                                          session_registry::make_nonce());
    shm_name = shm_base + ".log";
    shm.create(shm_name, bytes);
  }
  if (!shm.valid()) {
    std::fprintf(stderr, "teeperf_record: shm_open(%s, %zu bytes) failed\n",
                 shm_name.c_str(), bytes);
    return 1;
  }
  ProfileLog log;
  u64 flags = log_flags::kMultithread;
  if (ring) flags |= log_flags::kRingBuffer;
  if (!spill_dir.empty()) flags |= log_flags::kSpillDrain;
  if (active) flags |= log_flags::kActive;
  if (calls) flags |= log_flags::kRecordCalls;
  if (returns) flags |= log_flags::kRecordReturns;
  if (!log.init(shm.data(), bytes, 0, flags, shard_count, replica_count)) {
    std::fprintf(stderr, "teeperf_record: log init failed\n");
    return 1;
  }
  log.header()->counter_mode = static_cast<u32>(mode);

  // Spill-drain mode: the drainer thread runs in this wrapper for the whole
  // session, consuming published windows into "<dir>/<prefix-base>.seg.NNNN"
  // chunk files while writers reclaim the space (DESIGN.md §10). Started
  // before the fork so the child's very first batches already have a
  // consumer.
  std::unique_ptr<drain::Drainer> drainer;
  if (!spill_dir.empty()) {
    std::string base = prefix;
    if (auto slash = base.find_last_of('/'); slash != std::string::npos) {
      base = base.substr(slash + 1);
    }
    drain::DrainerOptions dopts;
    dopts.prefix = spill_dir + "/" + base;
    dopts.chunk_entries = spill_chunk_entries;
    drainer = std::make_unique<drain::Drainer>(&log, dopts);
    drainer->start();
  }

  // Self-telemetry region, scraped live by teeperf_stats and written to by
  // both this wrapper (watchdog gauges, journal) and the child (per-thread
  // entry counters).
  std::unique_ptr<obs::SelfTelemetry> telem;
  if (telemetry) {
    obs::TelemetryOptions topts;
    topts.shm_name = shm_base + ".obs";
    telem = obs::SelfTelemetry::create(topts);
    if (!telem) {
      std::fprintf(stderr, "teeperf_record: telemetry shm failed, continuing "
                           "without\n");
    } else {
      // Publishes the region process-wide and bridges external fault arming
      // (teeperf_stats --arm → "fault.arm.*" gauges → watchdog poll).
      obs::install(telem.get());
    }
  }

  // Announce the session in the on-disk registry so host-side observers
  // (teeperf_monitord, teeperf_stats --list / <pid>) can discover it
  // without guessing shm names. Withdrawn at exit; a crashed wrapper's
  // descriptor is reclaimed by the stale-session GC above.
  session_registry::SessionDescriptor session_desc;
  session_desc.name = shm_base.substr(1);  // drop the leading '/'
  session_desc.pid = static_cast<u64>(getpid());
  session_desc.log_shm = shm_name;
  if (telem) session_desc.obs_shm = telem->shm_name();
  session_desc.prefix = prefix;
  session_desc.capacity = max_entries;
  session_desc.shards = log.shard_count();
  session_desc.start_ns = monotonic_ns();
  if (!session_registry::publish_session(session_dir, session_desc)) {
    std::fprintf(stderr,
                 "teeperf_record: cannot publish session descriptor under %s "
                 "(monitoring tools will not discover this session)\n",
                 session_dir.c_str());
  }

  // The software counter runs here, on the host — the measured application
  // only ever reads the header word. With --counter-replicas the replicated
  // subsystem replaces the single thread: the elected primary mirrors into
  // the same header word, so the child's probe path is identical.
  std::unique_ptr<SoftwareCounter> sw;
  std::unique_ptr<ReplicatedCounter> replicated;
  if (mode == CounterMode::kSoftware) {
    if (log.counter_replica_count() > 0) {
      replicated = std::make_unique<ReplicatedCounter>(
          log.header(), log.replica_directory(), log.replica_slot(0));
      if (telem) {
        obs::EventJournal* journal = &telem->journal();
        replicated->set_failover_callback(
            [journal](u32 from, u32 to, u64) {
              journal->record(obs::EventType::kCounterFailover, from, to,
                              "replica");
            });
        replicated->set_backjump_callback(
            [journal](u32, u64 from, u64 to) {
              journal->record(obs::EventType::kCounterBackjump, to, from,
                              "replica");
            });
      }
      replicated->start();
    } else {
      sw = std::make_unique<SoftwareCounter>(log.header(), /*yield_every=*/4096);
      sw->start();
    }
  }

  std::unique_ptr<obs::Watchdog> watchdog;
  if (telem) {
    telem->journal().record(obs::EventType::kAttach,
                            static_cast<u64>(getpid()), 0, counter);
    if (active) telem->journal().record(obs::EventType::kActivate);
    telem->registry().gauge(obs::metric_names::kLogCapacity).set(max_entries);
    LogHeader* header = log.header();
    watchdog = std::make_unique<obs::Watchdog>(
        &telem->registry(), &telem->journal(),
        [mode, header] { return read_counter(mode, header); }, counter);
    drain::Drainer* dr = drainer.get();
    watchdog->watch_log([&log, ring, dr] {
      obs::LogSample s;
      s.tail = log.attempted();
      s.capacity = log.capacity();
      s.active = log.active();
      s.ring = ring;
      s.spill = log.spill();
      s.dropped = log.dropped();
      for (u32 si = 0; si < log.shard_count(); ++si) {
        s.shard_tails.push_back(
            log.shard(si)->tail.load(std::memory_order_relaxed));
      }
      if (dr) {
        drain::Drainer::Stats st = dr->stats();
        s.drain_lag = st.lag_entries;
        s.drain_spilled_bytes = st.spilled_bytes;
        s.drained_entries = st.drained_entries;
      }
      return s;
    });
    if (replicated) {
      ReplicatedCounter* rc = replicated.get();
      watchdog->watch_replicas([rc] {
        ReplicatedCounter::Health h = rc->health();
        obs::ReplicaSample s;
        s.replicas = h.replicas;
        s.primary = h.primary;
        s.failovers = h.failovers;
        s.backjumps = h.backjumps;
        s.stalled_replicas = h.stalled_replicas;
        s.drift_permille = h.drift_permille;
        return s;
      });
      telem->registry()
          .gauge(obs::metric_names::kCounterReplicas)
          .set(log.counter_replica_count());
    }
    watchdog->start();
  }

  pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    setenv("TEEPERF_SHM", shm_name.c_str(), 1);
    setenv("TEEPERF_COUNTER", counter.c_str(), 1);
    setenv("TEEPERF_SYM", (prefix + ".sym").c_str(), 1);
    if (telem) setenv("TEEPERF_OBS", telem->shm_name().c_str(), 1);
    if (!fault_spec.empty()) {
      setenv("TEEPERF_FAULTS", fault_spec.c_str(), 1);
      setenv("TEEPERF_FAULT_SEED", std::to_string(fault_seed).c_str(), 1);
    }
    if (!filter_spec.empty()) setenv("TEEPERF_FILTER", filter_spec.c_str(), 1);
    execvp(argv[i], argv + i);
    std::perror("execvp");
    _exit(127);
  }

  // Dynamic activation (§II-B): the flags word is atomic in shared memory,
  // so the wrapper can toggle measurement while the application runs.
  std::atomic<bool> child_done{false};
  std::thread toggler([&] {
    auto wait_ms = [&](long ms) {
      for (long waited = 0; waited < ms && !child_done.load(std::memory_order_acquire); waited += 10) {
        usleep(10'000);
      }
    };
    if (start_after_ms >= 0) {
      wait_ms(start_after_ms);
      if (!child_done.load(std::memory_order_acquire)) {
        log.set_active(true);
        if (telem) telem->journal().record(obs::EventType::kActivate);
      }
    }
    if (stop_after_ms >= 0) {
      wait_ms(stop_after_ms - (start_after_ms > 0 ? start_after_ms : 0));
      if (!child_done.load(std::memory_order_acquire)) {
        log.set_active(false);
        if (telem) telem->journal().record(obs::EventType::kDeactivate);
      }
    }
  });

  // Watchdog fault injection: freezing the software counter mid-run must
  // surface as a counter_stall event (the acceptance check for the
  // counter-health path; see DESIGN.md "Observability").
  std::thread freezer;
  if (freeze_counter_after_ms >= 0 && sw) {
    freezer = std::thread([&] {
      for (long waited = 0; waited < freeze_counter_after_ms; waited += 10) {
        usleep(10'000);
      }
      sw->stop();
    });
  }

  int status = 0;
  if (drainer) {
    // Supervise child and drainer together. A dead drainer (fault injection,
    // chunk I/O failure) is restarted in place — resume is safe because
    // chunks are persisted before the drained cursor advances, and the next
    // sequence number is recovered from the files already on disk.
    while (waitpid(child, &status, WNOHANG) == 0) {
      if (drainer->dead()) {
        std::fprintf(stderr, "teeperf_record: drainer died; resuming\n");
        drainer->restart();
      }
      usleep(2'000);
    }
  } else {
    waitpid(child, &status, 0);
  }
  if (hold_ms > 0) {
    // Keep the session (and its live telemetry) scrapeable for a while —
    // demos and tests attach teeperf_stats during this window.
    usleep(static_cast<useconds_t>(hold_ms) * 1000);
  }
  child_done.store(true, std::memory_order_release);
  toggler.join();
  if (freezer.joinable()) freezer.join();
  log.header()->pid = static_cast<u64>(child);

  // Measure tick rate before the counter stops, then persist. A replicated
  // session has been calibrating continuously across the whole run; a plain
  // session takes a fresh spot measurement, retried because one stalled 2 ms
  // window must not mark the dump uncalibrated (and must never silently
  // pretend 1 ns/tick, the old failure mode). 0 = "uncalibrated" downstream.
  std::optional<double> npt;
  if (replicated) npt = replicated->calibrated_ns_per_tick();
  for (int attempt = 0; attempt < 3 && !npt; ++attempt) {
    npt = counter_ns_per_tick(mode, log.header());
  }
  log.header()->ns_per_tick = npt.value_or(0.0);
  if (sw) sw->stop();
  if (replicated) replicated->stop();
  log.set_active(false);
  if (drainer) {
    // Writers are gone: drain every remaining published window to chunks.
    // Unpublished residue (a writer killed between reserve and publish)
    // stays in the shm windows and lands in the compact .log below.
    if (drainer->dead()) drainer->restart();
    drainer->final_drain();
  }

  u64 tail = log.attempted();
  u64 n = log.size();
  if (log.sharded() || (ring && tail > max_entries)) {
    // Sharded or wrapped logs persist in compact form (windows packed
    // back-to-back, ring order normalized) so offline loaders see plain
    // order with no gaps.
    if (!write_file(prefix + ".log", log.serialize_compact())) {
      std::fprintf(stderr, "teeperf_record: writing %s.log failed\n",
                   prefix.c_str());
      return 1;
    }
  } else {
    usize out_bytes = sizeof(LogHeader) + static_cast<usize>(n) * sizeof(LogEntry);
    if (!write_file(prefix + ".log",
                    std::string_view(static_cast<const char*>(shm.data()),
                                     out_bytes))) {
      std::fprintf(stderr, "teeperf_record: writing %s.log failed\n",
                   prefix.c_str());
      return 1;
    }
  }

  // Telemetry teardown: final health snapshot + event journal become sidecar
  // files next to the log, which teeperf_analyze folds into its report.
  if (telem) {
    obs::MetricsRegistry& reg = telem->registry();
    if (u64 torn = log.count_torn_tail()) {
      reg.gauge(obs::metric_names::kLogTornTail).set(torn);
      telem->journal().record(obs::EventType::kTornTail, torn, tail);
    }
    if (watchdog) watchdog->stop();
    // Both layouts keep their drop counters in shared memory (v1's moved
    // into a reserved header word), so the child's drops are visible here
    // directly — no reconstruction from the tail.
    telem->journal().record(obs::EventType::kDetach, n, log.dropped());
    if (!write_file(prefix + ".health",
                    obs::health_text(reg, telem->journal()))) {
      std::fprintf(stderr, "teeperf_record: writing %s.health failed\n",
                   prefix.c_str());
    }
    if (!write_file(prefix + ".events.jsonl",
                    obs::events_jsonl(telem->journal()))) {
      std::fprintf(stderr, "teeperf_record: writing %s.events.jsonl failed\n",
                   prefix.c_str());
    }
    obs::uninstall(telem.get());
  }
  session_registry::unpublish_session(session_dir, session_desc.name);

  if (drainer) {
    drain::Drainer::Stats st = drainer->stats();
    std::fprintf(stderr,
                 "teeperf_record: spilled %llu entries to %u chunks "
                 "(%llu bytes) under %s\n",
                 static_cast<unsigned long long>(st.drained_entries),
                 static_cast<unsigned>(st.chunks),
                 static_cast<unsigned long long>(st.spilled_bytes),
                 spill_dir.c_str());
  }
  std::fprintf(stderr,
               "teeperf_record: %llu entries (%llu attempted), counter=%s, "
               "wrote %s.log%s%s\n",
               static_cast<unsigned long long>(n),
               static_cast<unsigned long long>(tail), counter.c_str(),
               prefix.c_str(),
               file_exists(prefix + ".sym") ? (" + " + prefix + ".sym").c_str()
                                            : " (no .sym — did the app link "
                                              "teeperf_core?)",
               telem ? " + .health + .events.jsonl" : "");
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 1;
}
