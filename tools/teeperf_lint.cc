// teeperf_lint: the project's static checker (DESIGN.md §9). Enforces the
// four repo rules — r1 probe-path purity, r2 explicit memory order, r3 shm
// layout manifest, r4 name-registry consistency — over the given source
// trees. See src/lint/rules.h for rule semantics and waiver syntax.
//
//   teeperf_lint --check src tools
//       --manifest tools/shm_manifest.json --testing TESTING.md
//
// Exit 0: clean (or all findings baselined). Exit 1: new findings.
// Exit 2: bad invocation / unreadable inputs.
#include "lint/lint.h"

int main(int argc, char** argv) { return teeperf::lint::lint_main(argc, argv); }
